//! Simulated-annealing sequence-pair placer.
//!
//! The placer explores sequence-pair encodings with the shared annealing
//! engine of [`apls_anneal`]. Two symmetry-handling modes are provided so that
//! experiment E9 (ablation) can compare them:
//!
//! * [`SymmetryMode::Exact`] — the exploration is restricted to
//!   symmetric-feasible encodings (the paper's approach): the move set of
//!   [`crate::symmetry::SymmetricMoveSet`] preserves property (1) and every
//!   candidate is legalised into an exactly symmetric placement;
//! * [`SymmetryMode::Penalty`] — unrestricted moves over all sequence-pairs
//!   with the symmetry error added to the cost function, the classical
//!   alternative the paper argues against.

use crate::hot::{HotMode, HotSpEval};
use crate::place::SymmetricPlacer;
use crate::seq::SpUndoLog;
use crate::symmetry::{canonical_symmetric_feasible, SymmetricMoveSet};
use crate::SequencePair;
use apls_anneal::{AnnealState, AnnealStats, Annealer, Schedule};
use apls_circuit::{ConstraintSet, ModuleId, Netlist, Placement, PlacementMetrics};
use apls_telemetry::Telemetry;
use rand::{Rng, RngCore};

/// How symmetry constraints are handled during annealing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SymmetryMode {
    /// Explore only symmetric-feasible encodings and legalise exactly.
    Exact,
    /// Explore all encodings; add `weight · symmetry_error` to the cost.
    Penalty {
        /// Cost weight of one doubled-dbu of symmetry error.
        weight: f64,
    },
}

/// Configuration of the sequence-pair placer.
#[derive(Debug, Clone)]
pub struct SeqPairPlacerConfig {
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Weight of the wirelength term relative to the area term.
    pub wirelength_weight: f64,
    /// Symmetry handling mode.
    pub symmetry_mode: SymmetryMode,
}

impl Default for SeqPairPlacerConfig {
    fn default() -> Self {
        SeqPairPlacerConfig {
            seed: 1,
            schedule: Schedule::for_problem_size(32),
            wirelength_weight: 0.5,
            symmetry_mode: SymmetryMode::Exact,
        }
    }
}

impl SeqPairPlacerConfig {
    /// A configuration scaled to the circuit size (schedule length grows with
    /// the module count).
    #[must_use]
    pub fn for_netlist(netlist: &Netlist) -> Self {
        SeqPairPlacerConfig {
            schedule: Schedule::for_problem_size(netlist.module_count()),
            ..SeqPairPlacerConfig::default()
        }
    }

    /// A fast configuration for tests and smoke runs.
    #[must_use]
    pub fn fast(seed: u64) -> Self {
        SeqPairPlacerConfig { seed, schedule: Schedule::fast(), ..SeqPairPlacerConfig::default() }
    }
}

/// Result of a placement run.
#[derive(Debug, Clone)]
pub struct SeqPairResult {
    /// The best placement found.
    pub placement: Placement,
    /// Metrics of that placement.
    pub metrics: PlacementMetrics,
    /// Largest symmetry deviation of the placement (doubled dbu).
    pub symmetry_error: i64,
    /// Final sequence-pair encoding.
    pub sequence_pair: SequencePair,
    /// Annealing statistics.
    pub stats: AnnealStats,
}

/// The simulated-annealing sequence-pair placer (Section II of the survey).
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks::fig1_circuit;
/// use apls_seqpair::{SeqPairPlacer, SeqPairPlacerConfig};
///
/// let (circuit, _) = fig1_circuit();
/// let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
/// let result = placer.run(&SeqPairPlacerConfig::fast(7));
/// assert_eq!(result.metrics.overlap_area, 0);
/// assert_eq!(result.symmetry_error, 0);
/// ```
#[derive(Debug, Clone)]
pub struct SeqPairPlacer<'a> {
    netlist: &'a Netlist,
    constraints: &'a ConstraintSet,
}

impl<'a> SeqPairPlacer<'a> {
    /// Creates a placer for a netlist and its constraints.
    #[must_use]
    pub fn new(netlist: &'a Netlist, constraints: &'a ConstraintSet) -> Self {
        SeqPairPlacer { netlist, constraints }
    }

    /// Builds a fresh annealing state (canonical initial encoding, hot
    /// evaluator, move set) for `config`. Shared with the parallel-tempering
    /// lane, which runs several of these states as temperature replicas.
    pub(crate) fn make_state(&self, config: &SeqPairPlacerConfig) -> SpState<'a> {
        let modules: Vec<ModuleId> = self.netlist.module_ids().collect();
        let initial = canonical_symmetric_feasible(&modules, self.constraints);
        let placer = SymmetricPlacer::new(self.netlist, self.constraints);
        let mode = match config.symmetry_mode {
            SymmetryMode::Exact => HotMode::Exact,
            SymmetryMode::Penalty { weight } => HotMode::Penalty { weight },
        };
        let hot = HotSpEval::new(
            self.constraints,
            placer.dims().to_vec(),
            self.netlist.adjacency(),
            &initial,
            mode,
            config.wirelength_weight,
        );
        SpState {
            sp: initial,
            undo: SpUndoLog::default(),
            #[cfg(debug_assertions)]
            check: None,
            best: None,
            placer,
            hot,
            touched: Vec::new(),
            moves: SymmetricMoveSet::new(self.constraints.clone()),
            config: config.clone(),
            last_kind: "none",
        }
    }

    /// Runs the annealing placement.
    #[must_use]
    pub fn run(&self, config: &SeqPairPlacerConfig) -> SeqPairResult {
        self.run_traced(config, &Telemetry::disabled())
    }

    /// [`SeqPairPlacer::run`] with telemetry (observe-only; results are
    /// bit-identical whatever collector is installed).
    #[must_use]
    pub fn run_traced(&self, config: &SeqPairPlacerConfig, telemetry: &Telemetry) -> SeqPairResult {
        let mut state = self.make_state(config);
        let stats =
            Annealer::with_seed(config.seed).run_traced(&mut state, &config.schedule, telemetry);

        // Prefer the best snapshot over the final accepted state.
        let (best_sp, _) = state.best.clone().unwrap_or((state.sp.clone(), f64::MAX));
        let placement = state.build_placement(&best_sp);
        let metrics = placement.metrics(self.netlist);
        let symmetry_error = placement.symmetry_error(self.constraints);
        SeqPairResult { placement, metrics, symmetry_error, sequence_pair: best_sp, stats }
    }
}

/// The sequence-pair annealing state on the single-evaluation hot path: each
/// proposal is legalised and scored exactly once (the driver hands the
/// accepted cost back to `commit`), the cost skips the O(n²) overlap scan
/// (sequence-pair packings are overlap-free by construction), rejected moves
/// are undone by replaying the undo log instead of restoring a clone of the
/// whole encoding, and scoring goes through the incremental [`HotSpEval`]
/// evaluator (suffix-resweep packing + delta-HPWL) instead of building a full
/// [`Placement`] per move. The cold [`SymmetricPlacer`] is kept only to build
/// the final reported placement; [`HotSpEval`] reproduces its coordinates
/// bit-for-bit (see `tests/hotpath_equivalence.rs`).
pub(crate) struct SpState<'a> {
    pub(crate) sp: SequencePair,
    undo: SpUndoLog,
    /// Clone-based reference for the undo log, kept only in debug builds.
    #[cfg(debug_assertions)]
    check: Option<SequencePair>,
    /// Best (sequence-pair, cost) seen so far.
    pub(crate) best: Option<(SequencePair, f64)>,
    placer: SymmetricPlacer<'a>,
    hot: HotSpEval<'a>,
    /// Modules whose α/β positions the open proposal may have changed.
    touched: Vec<ModuleId>,
    moves: SymmetricMoveSet,
    config: SeqPairPlacerConfig,
    /// Telemetry label of the most recent proposal's move type.
    last_kind: &'static str,
}

impl SpState<'_> {
    pub(crate) fn build_placement(&self, sp: &SequencePair) -> Placement {
        match self.config.symmetry_mode {
            SymmetryMode::Exact => self.placer.place(sp),
            SymmetryMode::Penalty { .. } => self.placer.place_unconstrained(sp),
        }
    }
}

impl AnnealState for SpState<'_> {
    fn cost(&mut self) -> f64 {
        self.hot.evaluate(&self.sp, Some(&self.touched))
    }

    fn propose(&mut self, rng: &mut dyn RngCore) {
        #[cfg(debug_assertions)]
        {
            self.check = Some(self.sp.clone());
        }
        match self.config.symmetry_mode {
            SymmetryMode::Exact => {
                // the S-F move set may occasionally reject a structural move
                // (already undone internally via the log); retry a few times
                // so proposals almost always change the state
                self.last_kind = "rejected";
                for _ in 0..8 {
                    if let Some(kind) =
                        self.moves.perturb_logged_kind(&mut self.sp, rng, &mut self.undo)
                    {
                        self.last_kind = kind;
                        break;
                    }
                }
            }
            SymmetryMode::Penalty { .. } => {
                self.undo.clear();
                let n = self.sp.len();
                if n < 2 {
                    self.touched.clear();
                    self.last_kind = "rejected";
                    return;
                }
                let i = rng.gen_range(0..n);
                let mut j = rng.gen_range(0..n);
                if i == j {
                    j = (j + 1) % n;
                }
                self.last_kind = match rng.gen_range(0..3u32) {
                    0 => {
                        self.sp.swap_in_alpha_logged(i, j, &mut self.undo);
                        "swap_alpha"
                    }
                    1 => {
                        self.sp.swap_in_beta_logged(i, j, &mut self.undo);
                        "swap_beta"
                    }
                    _ => {
                        self.sp.swap_in_alpha_logged(i, j, &mut self.undo);
                        self.sp.swap_in_beta_logged(i, j, &mut self.undo);
                        "swap_both"
                    }
                };
            }
        }
        self.touched.clear();
        self.undo.touched_modules(&self.sp, &mut self.touched);
    }

    fn rollback(&mut self) {
        self.sp.undo(&mut self.undo);
        self.hot.rollback();
        #[cfg(debug_assertions)]
        if let Some(prev) = self.check.take() {
            debug_assert!(
                self.sp == prev,
                "undo-log rollback diverged from the clone-based reference"
            );
        }
    }

    fn commit(&mut self, accepted_cost: f64) {
        self.hot.commit();
        let better = match &self.best {
            Some((_, best_cost)) => accepted_cost < *best_cost,
            None => true,
        };
        if better {
            self.best = Some((self.sp.clone(), accepted_cost));
        }
    }

    fn move_kind(&self) -> &'static str {
        self.last_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks::{self, fig1_circuit};

    #[test]
    fn exact_mode_produces_legal_symmetric_placements() {
        let (circuit, _) = fig1_circuit();
        let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let result = placer.run(&SeqPairPlacerConfig::fast(3));
        assert!(result.placement.is_complete());
        assert_eq!(result.metrics.overlap_area, 0);
        assert_eq!(result.symmetry_error, 0);
        assert!(result.stats.moves.attempted > 0);
    }

    #[test]
    fn annealing_does_not_worsen_the_initial_cost() {
        let (circuit, _) = fig1_circuit();
        let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let result = placer.run(&SeqPairPlacerConfig::fast(4));
        assert!(result.stats.best_cost <= result.stats.initial_cost);
    }

    #[test]
    fn penalty_mode_runs_and_reports_error() {
        let (circuit, _) = fig1_circuit();
        let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let config = SeqPairPlacerConfig {
            symmetry_mode: SymmetryMode::Penalty { weight: 10.0 },
            ..SeqPairPlacerConfig::fast(5)
        };
        let result = placer.run(&config);
        assert_eq!(result.metrics.overlap_area, 0);
        // penalty mode gives no exactness guarantee; the error is just reported
        assert!(result.symmetry_error >= 0);
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let (circuit, _) = fig1_circuit();
        let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let a = placer.run(&SeqPairPlacerConfig::fast(9));
        let b = placer.run(&SeqPairPlacerConfig::fast(9));
        assert_eq!(a.metrics.bounding_area, b.metrics.bounding_area);
        assert_eq!(a.sequence_pair, b.sequence_pair);
    }

    #[test]
    fn miller_benchmark_places_legally_with_symmetry() {
        let circuit = benchmarks::miller_v2();
        let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let result = placer.run(&SeqPairPlacerConfig::fast(1));
        assert_eq!(result.metrics.overlap_area, 0);
        assert_eq!(result.symmetry_error, 0);
        // area usage should be somewhere sane (< 3x of the module area)
        assert!(result.metrics.area_usage < 3.0, "area usage {}", result.metrics.area_usage);
    }
}
