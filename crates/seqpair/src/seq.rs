//! The sequence-pair encoding.

use apls_circuit::ModuleId;
use std::collections::BTreeSet;
use std::fmt;

/// A sequence-pair (α, β): two permutations of the same module set.
///
/// The sequence-pair encodes a packed floorplan topologically (Murata et al.,
/// reference [22] of the survey): module `a` is left of `b` iff `a` precedes
/// `b` in *both* sequences, and `a` is below `b` iff `a` follows `b` in α but
/// precedes it in β. Every pair of modules is therefore related horizontally
/// or vertically and any sequence-pair corresponds to a legal (overlap-free)
/// placement.
///
/// The struct maintains the inverse permutations so that the position lookups
/// `α⁻¹`/`β⁻¹` used by the symmetric-feasible predicate are O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencePair {
    alpha: Vec<ModuleId>,
    beta: Vec<ModuleId>,
    /// alpha_pos[m.index()] = position of m in alpha
    alpha_pos: Vec<usize>,
    /// beta_pos[m.index()] = position of m in beta
    beta_pos: Vec<usize>,
}

/// One primitive, self-inverse edit of a [`SequencePair`]: every move of the
/// annealing placer decomposes into at most four of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpOp {
    /// Positions `i` and `j` of α were swapped.
    AlphaPos(usize, usize),
    /// Positions `i` and `j` of β were swapped.
    BetaPos(usize, usize),
    /// Modules `a` and `b` were swapped in α.
    AlphaModules(ModuleId, ModuleId),
    /// Modules `a` and `b` were swapped in β.
    BetaModules(ModuleId, ModuleId),
}

/// The inverse record of one perturbation, replayed by [`SequencePair::undo`].
///
/// Every primitive edit of a sequence-pair is an involution (a swap undoes
/// itself), so undoing a move is replaying its recorded ops in reverse order —
/// O(move size) instead of restoring a full clone of both sequences and both
/// position caches. The op buffer (at most four entries per move) is reused
/// across moves, so steady-state recording allocates nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpUndoLog {
    ops: Vec<SpOp>,
}

impl SpUndoLog {
    /// Discards any recorded ops (the start of recording a new move).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Returns `true` when the log holds nothing to undo.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends the modules whose α or β position may have changed under the
    /// recorded ops to `out` (duplicates possible; `out` is not cleared).
    ///
    /// Positional swaps resolve through the *current* sequences — the set of
    /// occupied positions is invariant under a swap, so post-move resolution
    /// names exactly the modules that moved.
    pub(crate) fn touched_modules(&self, sp: &SequencePair, out: &mut Vec<ModuleId>) {
        for op in &self.ops {
            match *op {
                SpOp::AlphaPos(i, j) => {
                    out.push(sp.alpha[i]);
                    out.push(sp.alpha[j]);
                }
                SpOp::BetaPos(i, j) => {
                    out.push(sp.beta[i]);
                    out.push(sp.beta[j]);
                }
                SpOp::AlphaModules(a, b) | SpOp::BetaModules(a, b) => {
                    out.push(a);
                    out.push(b);
                }
            }
        }
    }
}

/// Error returned when the two sequences are not permutations of the same set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidSequencePairError {
    reason: String,
}

impl fmt::Display for InvalidSequencePairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sequence-pair: {}", self.reason)
    }
}

impl std::error::Error for InvalidSequencePairError {}

impl SequencePair {
    /// Builds the identity sequence-pair (α = β = the given order).
    ///
    /// The identity encoding packs all modules in one horizontal row.
    ///
    /// # Panics
    ///
    /// Panics if `modules` contains duplicates.
    #[must_use]
    pub fn identity(modules: Vec<ModuleId>) -> Self {
        SequencePair::from_sequences(modules.clone(), modules)
            .expect("identity sequences are always consistent")
    }

    /// Builds a sequence-pair from explicit α and β sequences.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequences differ in length, contain duplicates,
    /// or are not permutations of the same module set.
    pub fn from_sequences(
        alpha: Vec<ModuleId>,
        beta: Vec<ModuleId>,
    ) -> Result<Self, InvalidSequencePairError> {
        if alpha.len() != beta.len() {
            return Err(InvalidSequencePairError {
                reason: format!("lengths differ: {} vs {}", alpha.len(), beta.len()),
            });
        }
        let set_a: BTreeSet<ModuleId> = alpha.iter().copied().collect();
        let set_b: BTreeSet<ModuleId> = beta.iter().copied().collect();
        if set_a.len() != alpha.len() {
            return Err(InvalidSequencePairError { reason: "alpha contains duplicates".into() });
        }
        if set_b.len() != beta.len() {
            return Err(InvalidSequencePairError { reason: "beta contains duplicates".into() });
        }
        if set_a != set_b {
            return Err(InvalidSequencePairError {
                reason: "alpha and beta are not permutations of the same module set".into(),
            });
        }
        let max_index = alpha.iter().map(|m| m.index()).max().unwrap_or(0);
        let mut alpha_pos = vec![usize::MAX; max_index + 1];
        let mut beta_pos = vec![usize::MAX; max_index + 1];
        for (i, m) in alpha.iter().enumerate() {
            alpha_pos[m.index()] = i;
        }
        for (i, m) in beta.iter().enumerate() {
            beta_pos[m.index()] = i;
        }
        Ok(SequencePair { alpha, beta, alpha_pos, beta_pos })
    }

    /// Number of modules in the encoding.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alpha.len()
    }

    /// Returns `true` for the empty encoding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alpha.is_empty()
    }

    /// The α sequence.
    #[must_use]
    pub fn alpha(&self) -> &[ModuleId] {
        &self.alpha
    }

    /// The β sequence.
    #[must_use]
    pub fn beta(&self) -> &[ModuleId] {
        &self.beta
    }

    /// Position of a module in α (the `α⁻¹` map of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the module is not part of the encoding.
    #[must_use]
    pub fn alpha_position(&self, module: ModuleId) -> usize {
        let pos = self.alpha_pos.get(module.index()).copied().unwrap_or(usize::MAX);
        assert!(pos != usize::MAX, "module {module} not in sequence-pair");
        pos
    }

    /// Position of a module in β (the `β⁻¹` map of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the module is not part of the encoding.
    #[must_use]
    pub fn beta_position(&self, module: ModuleId) -> usize {
        let pos = self.beta_pos.get(module.index()).copied().unwrap_or(usize::MAX);
        assert!(pos != usize::MAX, "module {module} not in sequence-pair");
        pos
    }

    /// Returns `true` when the encoding contains the module.
    #[must_use]
    pub fn contains(&self, module: ModuleId) -> bool {
        module.index() < self.alpha_pos.len() && self.alpha_pos[module.index()] != usize::MAX
    }

    /// Returns `true` when `a` is left of `b`: `a` precedes `b` in both
    /// sequences.
    #[must_use]
    pub fn is_left_of(&self, a: ModuleId, b: ModuleId) -> bool {
        self.alpha_position(a) < self.alpha_position(b)
            && self.beta_position(a) < self.beta_position(b)
    }

    /// Returns `true` when `a` is below `b`: `a` follows `b` in α but precedes
    /// it in β.
    #[must_use]
    pub fn is_below(&self, a: ModuleId, b: ModuleId) -> bool {
        self.alpha_position(a) > self.alpha_position(b)
            && self.beta_position(a) < self.beta_position(b)
    }

    /// Swaps the modules at two positions of α.
    pub fn swap_in_alpha(&mut self, i: usize, j: usize) {
        self.alpha.swap(i, j);
        self.alpha_pos[self.alpha[i].index()] = i;
        self.alpha_pos[self.alpha[j].index()] = j;
    }

    /// Swaps the modules at two positions of β.
    pub fn swap_in_beta(&mut self, i: usize, j: usize) {
        self.beta.swap(i, j);
        self.beta_pos[self.beta[i].index()] = i;
        self.beta_pos[self.beta[j].index()] = j;
    }

    /// Swaps two modules (given by id) in α.
    pub fn swap_modules_in_alpha(&mut self, a: ModuleId, b: ModuleId) {
        let (i, j) = (self.alpha_position(a), self.alpha_position(b));
        self.swap_in_alpha(i, j);
    }

    /// Swaps two modules (given by id) in β.
    pub fn swap_modules_in_beta(&mut self, a: ModuleId, b: ModuleId) {
        let (i, j) = (self.beta_position(a), self.beta_position(b));
        self.swap_in_beta(i, j);
    }

    /// [`SequencePair::swap_in_alpha`] with an undo record appended to `log`.
    pub fn swap_in_alpha_logged(&mut self, i: usize, j: usize, log: &mut SpUndoLog) {
        self.swap_in_alpha(i, j);
        log.ops.push(SpOp::AlphaPos(i, j));
    }

    /// [`SequencePair::swap_in_beta`] with an undo record appended to `log`.
    pub fn swap_in_beta_logged(&mut self, i: usize, j: usize, log: &mut SpUndoLog) {
        self.swap_in_beta(i, j);
        log.ops.push(SpOp::BetaPos(i, j));
    }

    /// [`SequencePair::swap_modules_in_alpha`] with an undo record appended to
    /// `log`.
    pub fn swap_modules_in_alpha_logged(&mut self, a: ModuleId, b: ModuleId, log: &mut SpUndoLog) {
        self.swap_modules_in_alpha(a, b);
        log.ops.push(SpOp::AlphaModules(a, b));
    }

    /// [`SequencePair::swap_modules_in_beta`] with an undo record appended to
    /// `log`.
    pub fn swap_modules_in_beta_logged(&mut self, a: ModuleId, b: ModuleId, log: &mut SpUndoLog) {
        self.swap_modules_in_beta(a, b);
        log.ops.push(SpOp::BetaModules(a, b));
    }

    /// Replays the inverse of the ops recorded in `log` (reverse order; each
    /// op is its own inverse), restoring the encoding to its exact state
    /// before the move. Consumes the log: a second call is a no-op.
    pub fn undo(&mut self, log: &mut SpUndoLog) {
        while let Some(op) = log.ops.pop() {
            match op {
                SpOp::AlphaPos(i, j) => self.swap_in_alpha(i, j),
                SpOp::BetaPos(i, j) => self.swap_in_beta(i, j),
                SpOp::AlphaModules(a, b) => self.swap_modules_in_alpha(a, b),
                SpOp::BetaModules(a, b) => self.swap_modules_in_beta(a, b),
            }
        }
    }

    /// Checks the internal position caches (used by debug assertions and the
    /// property tests).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.alpha.len() == self.beta.len()
            && self.alpha.iter().enumerate().all(|(i, m)| self.alpha_pos[m.index()] == i)
            && self.beta.iter().enumerate().all(|(i, m)| self.beta_pos[m.index()] == i)
    }
}

impl fmt::Display for SequencePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_seq = |seq: &[ModuleId]| -> String {
            seq.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(" ")
        };
        write!(f, "alpha: [{}], beta: [{}]", fmt_seq(&self.alpha), fmt_seq(&self.beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn identity_relations_are_all_left_of() {
        let sp = SequencePair::identity(vec![id(0), id(1), id(2)]);
        assert!(sp.is_left_of(id(0), id(1)));
        assert!(sp.is_left_of(id(1), id(2)));
        assert!(!sp.is_below(id(0), id(1)));
        assert!(sp.is_consistent());
    }

    #[test]
    fn below_relation() {
        // alpha: 1 0, beta: 0 1 => 0 below 1
        let sp = SequencePair::from_sequences(vec![id(1), id(0)], vec![id(0), id(1)]).unwrap();
        assert!(sp.is_below(id(0), id(1)));
        assert!(!sp.is_left_of(id(0), id(1)));
        assert!(!sp.is_left_of(id(1), id(0)));
    }

    #[test]
    fn every_pair_is_related_exactly_one_way() {
        let sp = SequencePair::from_sequences(
            vec![id(2), id(0), id(3), id(1)],
            vec![id(0), id(1), id(2), id(3)],
        )
        .unwrap();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let relations = [
                    sp.is_left_of(id(a), id(b)),
                    sp.is_left_of(id(b), id(a)),
                    sp.is_below(id(a), id(b)),
                    sp.is_below(id(b), id(a)),
                ];
                assert_eq!(relations.iter().filter(|&&r| r).count(), 1, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn invalid_pairs_are_rejected() {
        assert!(SequencePair::from_sequences(vec![id(0)], vec![id(0), id(1)]).is_err());
        assert!(SequencePair::from_sequences(vec![id(0), id(0)], vec![id(0), id(1)]).is_err());
        assert!(SequencePair::from_sequences(vec![id(0), id(1)], vec![id(0), id(2)]).is_err());
    }

    #[test]
    fn swaps_update_position_caches() {
        let mut sp = SequencePair::identity(vec![id(0), id(1), id(2), id(3)]);
        sp.swap_in_alpha(0, 3);
        assert_eq!(sp.alpha_position(id(3)), 0);
        assert_eq!(sp.alpha_position(id(0)), 3);
        sp.swap_modules_in_beta(id(1), id(2));
        assert_eq!(sp.beta_position(id(1)), 2);
        assert!(sp.is_consistent());
    }

    #[test]
    fn undo_replays_logged_swaps_in_reverse() {
        let mut sp = SequencePair::identity(vec![id(0), id(1), id(2), id(3)]);
        let before = sp.clone();
        let mut log = SpUndoLog::default();
        sp.swap_in_alpha_logged(0, 3, &mut log);
        sp.swap_modules_in_beta_logged(id(1), id(2), &mut log);
        sp.swap_in_beta_logged(0, 1, &mut log);
        sp.swap_modules_in_alpha_logged(id(0), id(2), &mut log);
        assert_ne!(sp, before);
        sp.undo(&mut log);
        assert_eq!(sp, before);
        assert!(sp.is_consistent());
        assert!(log.is_empty());
        // a consumed log is a no-op
        sp.undo(&mut log);
        assert_eq!(sp, before);
    }

    #[test]
    fn display_is_readable() {
        let sp = SequencePair::identity(vec![id(0), id(1)]);
        let s = sp.to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("m0"));
    }

    #[test]
    #[should_panic(expected = "not in sequence-pair")]
    fn position_of_unknown_module_panics() {
        let sp = SequencePair::identity(vec![id(0), id(1)]);
        let _ = sp.alpha_position(id(5));
    }
}
