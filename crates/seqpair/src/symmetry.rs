//! Symmetric-feasible sequence-pairs: predicate, construction and moves.
//!
//! Property (1) of the paper defines when a sequence-pair (α, β) is
//! *symmetric-feasible* (S-F) for a symmetry group: for any two distinct cells
//! `x`, `y` of the group,
//!
//! ```text
//! α⁻¹(x) < α⁻¹(y)  ⟺  β⁻¹(sym(y)) < β⁻¹(sym(x))
//! ```
//!
//! Restricting exploration to S-F encodings shrinks the search space by the
//! factor given by the counting lemma (see [`crate::counting`]) while every
//! S-F encoding still packs into a valid symmetric placement (see
//! [`crate::place`]).

use crate::seq::SpUndoLog;
use crate::SequencePair;
use apls_circuit::{ConstraintSet, ModuleId, SymmetryGroup};
use rand::Rng;
use rand::RngCore;

/// Checks property (1) for one symmetry group.
///
/// # Example
///
/// ```
/// use apls_circuit::{SymmetryGroup, ModuleId};
/// use apls_seqpair::{SequencePair, symmetry::is_symmetric_feasible};
///
/// let a = ModuleId::from_index(0);
/// let b = ModuleId::from_index(1);
/// let group = SymmetryGroup::new("g").with_pair(a, b);
/// let good = SequencePair::identity(vec![a, b]);
/// assert!(is_symmetric_feasible(&good, &group));
/// ```
#[must_use]
pub fn is_symmetric_feasible(sp: &SequencePair, group: &SymmetryGroup) -> bool {
    let members = group.members();
    for (i, &x) in members.iter().enumerate() {
        for &y in &members[i + 1..] {
            let sym_x = group.partner_of(x).expect("member has a partner");
            let sym_y = group.partner_of(y).expect("member has a partner");
            let alpha_order = sp.alpha_position(x) < sp.alpha_position(y);
            let beta_order = sp.beta_position(sym_y) < sp.beta_position(sym_x);
            if alpha_order != beta_order {
                return false;
            }
        }
    }
    true
}

/// Checks property (1) for every symmetry group of a constraint set.
#[must_use]
pub fn is_symmetric_feasible_for_all(sp: &SequencePair, constraints: &ConstraintSet) -> bool {
    constraints.symmetry_groups().iter().all(|g| is_symmetric_feasible(sp, g))
}

/// Builds a canonical symmetric-feasible sequence-pair over the given modules.
///
/// For every symmetry group the α block is
/// `left₁ … left_p, self₁ … self_s, right_p … right₁`; the β block places the
/// same cells in the order `sym(reverse(α block))`, which makes property (1)
/// hold by construction for every pair of group members (the relative β order
/// of the `sym` images is exactly the reverse of the relative α order).
/// Unconstrained modules occupy the same trailing positions in both
/// sequences. The result is the standard starting point of the annealing
/// placer.
///
/// # Panics
///
/// Panics if a module appears in more than one symmetry group (use
/// [`ConstraintSet::validate`] first).
#[must_use]
pub fn canonical_symmetric_feasible(
    modules: &[ModuleId],
    constraints: &ConstraintSet,
) -> SequencePair {
    let mut alpha: Vec<ModuleId> = Vec::with_capacity(modules.len());
    let mut beta: Vec<ModuleId> = Vec::with_capacity(modules.len());
    let max_index = modules.iter().map(|m| m.index()).max().map_or(0, |m| m + 1);
    let mut emitted = vec![false; max_index];

    for group in constraints.symmetry_groups() {
        // only consider groups whose members are all in the module list
        if !group.members().iter().all(|m| modules.contains(m)) {
            continue;
        }
        let mut alpha_block: Vec<ModuleId> = Vec::new();
        for &(l, _) in group.pairs() {
            alpha_block.push(l);
        }
        for &s in group.self_symmetric() {
            alpha_block.push(s);
        }
        for &(_, r) in group.pairs().iter().rev() {
            alpha_block.push(r);
        }
        for &m in &alpha_block {
            assert!(!emitted[m.index()], "module {m} appears in more than one symmetry group");
            emitted[m.index()] = true;
        }
        let beta_block: Vec<ModuleId> = alpha_block
            .iter()
            .rev()
            .map(|&m| group.partner_of(m).expect("member has a partner"))
            .collect();
        alpha.extend_from_slice(&alpha_block);
        beta.extend_from_slice(&beta_block);
    }
    for &m in modules {
        if !emitted[m.index()] {
            emitted[m.index()] = true;
            alpha.push(m);
            beta.push(m);
        }
    }

    SequencePair::from_sequences(alpha, beta)
        .expect("canonical construction emits each module exactly once")
}

/// The symmetric-feasible move set of the annealing placer.
///
/// Each move perturbs the sequence-pair while keeping property (1) intact for
/// every group:
///
/// * swapping two cells in α is mirrored by swapping their partners in β (and
///   vice versa), as described in Section II of the paper;
/// * full swaps (both sequences) of two unconstrained cells;
/// * moving an unconstrained cell to a random position.
///
/// After applying the structural move the perturbation is verified with
/// [`is_symmetric_feasible_for_all`]; if a corner case (e.g. cells from the
/// same group interacting) breaks the property the move is rolled back and the
/// perturbation reports `false` so the caller can retry.
#[derive(Debug, Clone)]
pub struct SymmetricMoveSet {
    constraints: ConstraintSet,
}

impl SymmetricMoveSet {
    /// Creates a move set for the given constraints.
    #[must_use]
    pub fn new(constraints: ConstraintSet) -> Self {
        SymmetricMoveSet { constraints }
    }

    /// The constraints this move set preserves.
    #[must_use]
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Applies one random S-F-preserving perturbation in place.
    ///
    /// Returns `true` when a move was applied (the sequence-pair changed and
    /// is still symmetric-feasible) and `false` when the attempted move had to
    /// be rolled back; callers typically retry a bounded number of times.
    pub fn perturb(&self, sp: &mut SequencePair, rng: &mut dyn RngCore) -> bool {
        let mut log = SpUndoLog::default();
        self.perturb_logged(sp, rng, &mut log)
    }

    /// [`SymmetricMoveSet::perturb`] with an undo record: on success `log`
    /// holds the exact inverse of the applied move for
    /// [`SequencePair::undo`]; on failure the move is already undone via the
    /// log (no clone-and-restore) and the log is left empty. RNG consumption
    /// is identical to `perturb`, so both follow the same trajectory.
    pub fn perturb_logged(
        &self,
        sp: &mut SequencePair,
        rng: &mut dyn RngCore,
        log: &mut SpUndoLog,
    ) -> bool {
        self.perturb_logged_kind(sp, rng, log).is_some()
    }

    /// [`SymmetricMoveSet::perturb_logged`] that additionally names the
    /// applied move (`"swap_alpha"`, `"swap_beta"` or `"swap_both"`) so
    /// telemetry can report the move-type mix; `None` when the move was
    /// rolled back. RNG consumption is identical to `perturb_logged`.
    pub fn perturb_logged_kind(
        &self,
        sp: &mut SequencePair,
        rng: &mut dyn RngCore,
        log: &mut SpUndoLog,
    ) -> Option<&'static str> {
        log.clear();
        if sp.len() < 2 {
            return None;
        }
        let kind = rng.gen_range(0..3u32);
        let n = sp.len();
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        if i == j {
            j = (j + 1) % n;
        }
        let kind_name = match kind {
            0 => {
                // swap in alpha, mirror partners in beta
                let a = sp.alpha()[i];
                let b = sp.alpha()[j];
                sp.swap_in_alpha_logged(i, j, log);
                let sym_a = self.partner_or_self(a);
                let sym_b = self.partner_or_self(b);
                if sym_a != sym_b {
                    sp.swap_modules_in_beta_logged(sym_a, sym_b, log);
                }
                "swap_alpha"
            }
            1 => {
                // swap in beta, mirror partners in alpha
                let a = sp.beta()[i];
                let b = sp.beta()[j];
                sp.swap_in_beta_logged(i, j, log);
                let sym_a = self.partner_or_self(a);
                let sym_b = self.partner_or_self(b);
                if sym_a != sym_b {
                    sp.swap_modules_in_alpha_logged(sym_a, sym_b, log);
                }
                "swap_beta"
            }
            _ => {
                // full swap in both sequences (by module), mirrored for partners
                let a = sp.alpha()[i];
                let b = sp.alpha()[j];
                sp.swap_in_alpha_logged(i, j, log);
                sp.swap_modules_in_beta_logged(a, b, log);
                let sym_a = self.partner_or_self(a);
                let sym_b = self.partner_or_self(b);
                if (sym_a, sym_b) != (a, b) && (sym_a, sym_b) != (b, a) && sym_a != sym_b {
                    sp.swap_modules_in_alpha_logged(sym_a, sym_b, log);
                    sp.swap_modules_in_beta_logged(sym_a, sym_b, log);
                }
                "swap_both"
            }
        };
        if is_symmetric_feasible_for_all(sp, &self.constraints) {
            Some(kind_name)
        } else {
            sp.undo(log);
            None
        }
    }

    fn partner_or_self(&self, m: ModuleId) -> ModuleId {
        self.constraints.symmetry_group_of(m).and_then(|g| g.partner_of(m)).unwrap_or(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_anneal::rng::SeededRng;
    use apls_circuit::benchmarks::fig1_circuit;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn paper_example_is_symmetric_feasible() {
        // Fig. 1: (EBAFCDG, EBCDFAG) with γ = {(C,D),(B,G),A,F}
        let (circuit, ids) = fig1_circuit();
        let group = &circuit.constraints.symmetry_groups()[0];
        let alpha = vec![ids[4], ids[1], ids[0], ids[5], ids[2], ids[3], ids[6]];
        let beta = vec![ids[4], ids[1], ids[2], ids[3], ids[5], ids[0], ids[6]];
        let sp = SequencePair::from_sequences(alpha, beta).unwrap();
        assert!(is_symmetric_feasible(&sp, group));
    }

    #[test]
    fn violating_pair_order_is_rejected() {
        // Pair (0,1): alpha has 0 before 1 but beta has sym(1)=0 after sym(0)=1
        // in the wrong order.
        let group = SymmetryGroup::new("g").with_pair(id(0), id(1));
        let sp = SequencePair::from_sequences(vec![id(0), id(1)], vec![id(1), id(0)]).unwrap();
        assert!(!is_symmetric_feasible(&sp, &group));
    }

    #[test]
    fn canonical_construction_is_always_feasible() {
        let (circuit, ids) = fig1_circuit();
        let sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        assert!(is_symmetric_feasible_for_all(&sp, &circuit.constraints));
        assert_eq!(sp.len(), ids.len());
    }

    #[test]
    fn canonical_construction_handles_multiple_groups() {
        let modules: Vec<ModuleId> = (0..8).map(id).collect();
        let mut cs = ConstraintSet::new();
        cs.add_symmetry_group(
            SymmetryGroup::new("g1").with_pair(id(0), id(1)).with_self_symmetric(id(2)),
        );
        cs.add_symmetry_group(
            SymmetryGroup::new("g2").with_pair(id(3), id(4)).with_pair(id(5), id(6)),
        );
        let sp = canonical_symmetric_feasible(&modules, &cs);
        assert!(is_symmetric_feasible_for_all(&sp, &cs));
        assert_eq!(sp.len(), 8);
    }

    #[test]
    fn move_set_preserves_feasibility() {
        let (circuit, ids) = fig1_circuit();
        let moves = SymmetricMoveSet::new(circuit.constraints.clone());
        let mut sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        let mut rng = SeededRng::new(11);
        let mut applied = 0;
        for _ in 0..500 {
            if moves.perturb(&mut sp, &mut rng) {
                applied += 1;
            }
            assert!(is_symmetric_feasible_for_all(&sp, &circuit.constraints));
            assert!(sp.is_consistent());
        }
        assert!(applied > 100, "only {applied} moves were applied");
    }

    #[test]
    fn move_set_reaches_many_distinct_encodings() {
        use std::collections::HashSet;
        let (circuit, ids) = fig1_circuit();
        let moves = SymmetricMoveSet::new(circuit.constraints.clone());
        let mut sp = canonical_symmetric_feasible(&ids, &circuit.constraints);
        let mut rng = SeededRng::new(5);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            moves.perturb(&mut sp, &mut rng);
            seen.insert(format!("{sp}"));
        }
        assert!(seen.len() > 50, "move set explored only {} encodings", seen.len());
    }

    #[test]
    fn unconstrained_modules_are_free_to_move() {
        let modules: Vec<ModuleId> = (0..4).map(id).collect();
        let cs = ConstraintSet::new();
        let moves = SymmetricMoveSet::new(cs.clone());
        let mut sp = canonical_symmetric_feasible(&modules, &cs);
        let mut rng = SeededRng::new(3);
        let mut applied = 0;
        for _ in 0..100 {
            if moves.perturb(&mut sp, &mut rng) {
                applied += 1;
            }
        }
        assert!(
            applied >= 95,
            "unconstrained moves should essentially always apply, got {applied}"
        );
    }
}
