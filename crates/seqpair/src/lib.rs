//! Sequence-pair analog placement with symmetry constraints.
//!
//! This crate implements Section II of the DATE 2009 survey, *Device level
//! topological placement with symmetry constraints*:
//!
//! * [`SequencePair`] — the (α, β) topological encoding of Murata et al.;
//! * [`pack`] — two packing algorithms turning an encoding into a placement:
//!   the O(n²) constraint-graph longest-path packer and the FAST-SP-style
//!   O(n log n) weighted-LCS packer;
//! * [`symmetry`] — the *symmetric-feasible* predicate (property (1) of the
//!   paper), canonical S-F sequence-pair construction, and the S-F-preserving
//!   move set;
//! * [`place`] — construction of an exactly mirror-symmetric placement from a
//!   symmetric-feasible sequence-pair;
//! * [`counting`] — the search-space reduction lemma
//!   `(n!)² / Π_k (2p_k + s_k)!` together with brute-force enumeration for
//!   cross-checking;
//! * [`anneal`] — the simulated-annealing placer that explores only
//!   symmetric-feasible encodings.
//!
//! # Example
//!
//! Reproduce the Fig. 1 example of the paper: the sequence-pair
//! `(EBAFCDG, EBCDFAG)` is symmetric-feasible for the symmetry group
//! `γ = {(C, D), (B, G), A, F}` and packs into a legal, exactly symmetric
//! placement:
//!
//! ```
//! use apls_circuit::benchmarks::fig1_circuit;
//! use apls_seqpair::{SequencePair, symmetry, place::SymmetricPlacer};
//!
//! let (circuit, ids) = fig1_circuit();
//! let by_name = |n: usize| ids[n];
//! // E B A F C D G    /    E B C D F A G   (indices into `ids`: A=0..G=6)
//! let alpha = vec![by_name(4), by_name(1), by_name(0), by_name(5), by_name(2), by_name(3), by_name(6)];
//! let beta  = vec![by_name(4), by_name(1), by_name(2), by_name(3), by_name(5), by_name(0), by_name(6)];
//! let sp = SequencePair::from_sequences(alpha, beta).unwrap();
//! let group = &circuit.constraints.symmetry_groups()[0];
//! assert!(symmetry::is_symmetric_feasible(&sp, group));
//!
//! let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
//! let placement = placer.place(&sp);
//! assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0);
//! assert_eq!(placement.symmetry_error(&circuit.constraints), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod counting;
mod hot;
pub mod pack;
pub mod place;
mod seq;
pub mod subset;
pub mod symmetry;
pub mod tempering;

pub use anneal::{SeqPairPlacer, SeqPairPlacerConfig, SymmetryMode};
pub use pack::{PackAlgorithm, PackedFloorplan};
pub use seq::{SequencePair, SpUndoLog};
pub use subset::{place_subcircuit, SubsetSeqPairResult};
pub use tempering::{TemperingPlacerConfig, TemperingResult, TemperingSeqPairPlacer};
