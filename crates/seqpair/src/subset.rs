//! Annealing a sub-netlist: a module subset with its inherited constraints.
//!
//! The hierarchical placement pipeline solves one hierarchy node at a time.
//! For nodes whose symmetry / common-centroid structure matters more than raw
//! enumeration, the sequence-pair engine is the natural sub-solver: this
//! module runs the full symmetric-feasible annealer on a
//! [`SubCircuit`](apls_circuit::SubCircuit) and hands the resulting placement
//! back in the *parent* design's module ids, ready for shape-function
//! abstraction.

use crate::{SeqPairPlacer, SeqPairPlacerConfig};
use apls_anneal::AnnealStats;
use apls_circuit::{ModuleId, SubCircuit};
use apls_geometry::Rect;

/// The result of annealing one sub-netlist.
#[derive(Debug, Clone)]
pub struct SubsetSeqPairResult {
    /// The placed rectangles, keyed by **global** module id (the parent
    /// design's ids, translated back through the sub-circuit mapping).
    pub rects: Vec<(ModuleId, Rect)>,
    /// Largest symmetry deviation of the sub-placement (doubled dbu), under
    /// the inherited constraints.
    pub symmetry_error: i64,
    /// Annealing statistics.
    pub stats: AnnealStats,
}

/// Anneals the sub-netlist of `sub` and returns the placement in global ids.
///
/// This is [`SeqPairPlacer::run`] on the restricted netlist and inherited
/// constraints; determinism carries over (same sub-circuit, same config, same
/// result).
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks::miller_opamp_fig6;
/// use apls_circuit::{ModuleId, SubCircuit};
/// use apls_seqpair::{place_subcircuit, SeqPairPlacerConfig};
///
/// let circuit = miller_opamp_fig6();
/// let core: Vec<ModuleId> = (0..4).map(ModuleId::from_index).collect();
/// let sub = SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &core);
/// let result = place_subcircuit(&sub, &SeqPairPlacerConfig::fast(7));
/// assert_eq!(result.rects.len(), 4);
/// assert_eq!(result.symmetry_error, 0);
/// ```
#[must_use]
pub fn place_subcircuit(sub: &SubCircuit, config: &SeqPairPlacerConfig) -> SubsetSeqPairResult {
    let result = SeqPairPlacer::new(&sub.netlist, &sub.constraints).run(config);
    let rects = result.placement.iter().map(|(m, p)| (sub.to_global(m), p.rect)).collect();
    SubsetSeqPairResult { rects, symmetry_error: result.symmetry_error, stats: result.stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks;
    use apls_geometry::total_overlap_area;

    fn id(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn sub_netlist_annealing_holds_inherited_symmetry_exactly() {
        let circuit = benchmarks::miller_opamp_fig6();
        let core: Vec<ModuleId> = (0..4).map(ModuleId::from_index).collect();
        let sub = SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &core);
        let result = place_subcircuit(&sub, &SeqPairPlacerConfig::fast(3));
        assert_eq!(result.symmetry_error, 0);
        let rects: Vec<Rect> = result.rects.iter().map(|&(_, r)| r).collect();
        assert_eq!(total_overlap_area(&rects), 0);
        // results come back keyed by the parent design's ids
        let mut ids: Vec<ModuleId> = result.rects.iter().map(|&(m, _)| m).collect();
        ids.sort_unstable();
        assert_eq!(ids, core);
    }

    #[test]
    fn pair_partners_keep_matched_dimensions_in_the_sub_placement() {
        let circuit = benchmarks::miller_v2();
        let modules: Vec<ModuleId> = circuit.netlist.module_ids().collect();
        let sub = SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &modules[..8]);
        let result = place_subcircuit(&sub, &SeqPairPlacerConfig::fast(5));
        for group in sub.constraints.symmetry_groups() {
            for &(l, r) in group.pairs() {
                let gl = sub.to_global(l);
                let gr = sub.to_global(r);
                let rl = result.rects.iter().find(|(m, _)| *m == gl).unwrap().1;
                let rr = result.rects.iter().find(|(m, _)| *m == gr).unwrap().1;
                assert_eq!(rl.width(), rr.width());
                assert_eq!(rl.height(), rr.height());
            }
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_sub_placements() {
        let circuit = benchmarks::comparator_v2();
        let modules: Vec<ModuleId> = (0..6).map(id).collect();
        let sub = SubCircuit::restrict(&circuit.netlist, &circuit.constraints, &modules);
        let a = place_subcircuit(&sub, &SeqPairPlacerConfig::fast(11));
        let b = place_subcircuit(&sub, &SeqPairPlacerConfig::fast(11));
        assert_eq!(a.rects, b.rects);
    }
}
