//! Property-based tests for the sequence-pair engine.

use apls_circuit::{ConstraintSet, Module, ModuleId, Netlist, SymmetryGroup};
use apls_geometry::{total_overlap_area, Dims, Rect};
use apls_seqpair::pack::{pack_constraint_graph, pack_lcs};
use apls_seqpair::place::SymmetricPlacer;
use apls_seqpair::symmetry::{
    canonical_symmetric_feasible, is_symmetric_feasible_for_all, SymmetricMoveSet,
};
use apls_seqpair::SequencePair;
use proptest::prelude::*;

fn id(i: usize) -> ModuleId {
    ModuleId::from_index(i)
}

/// Generates a random permutation of 0..n as module ids.
fn arb_permutation(n: usize) -> impl Strategy<Value = Vec<ModuleId>> {
    Just((0..n).collect::<Vec<usize>>())
        .prop_shuffle()
        .prop_map(|v| v.into_iter().map(id).collect())
}

/// Generates a random sequence-pair plus matching dimensions.
fn arb_seqpair_and_dims() -> impl Strategy<Value = (SequencePair, Vec<Dims>)> {
    (2usize..12)
        .prop_flat_map(|n| {
            (
                arb_permutation(n),
                arb_permutation(n),
                proptest::collection::vec((5i64..100, 5i64..100), n),
            )
        })
        .prop_map(|(alpha, beta, sizes)| {
            let sp = SequencePair::from_sequences(alpha, beta).expect("same module set");
            let dims = sizes.into_iter().map(|(w, h)| Dims::new(w, h)).collect();
            (sp, dims)
        })
}

proptest! {
    /// Any sequence-pair packs into an overlap-free placement (the defining
    /// property of the representation).
    #[test]
    fn packing_is_always_legal((sp, dims) in arb_seqpair_and_dims()) {
        let fp = pack_lcs(&sp, &dims);
        let rects: Vec<Rect> = fp.rects().iter().map(|(_, r)| *r).collect();
        prop_assert_eq!(total_overlap_area(&rects), 0);
        // floorplan extents cover every rectangle
        for (_, r) in fp.rects() {
            prop_assert!(r.x_max <= fp.width());
            prop_assert!(r.y_max <= fp.height());
            prop_assert!(r.x_min >= 0 && r.y_min >= 0);
        }
    }

    /// The O(n²) and O(n log n) packers agree exactly.
    #[test]
    fn both_packers_agree((sp, dims) in arb_seqpair_and_dims()) {
        prop_assert_eq!(pack_constraint_graph(&sp, &dims), pack_lcs(&sp, &dims));
    }

    /// The floorplan area is at least the total module area.
    #[test]
    fn packing_cannot_beat_total_area((sp, dims) in arb_seqpair_and_dims()) {
        let fp = pack_lcs(&sp, &dims);
        let total: i128 = dims.iter().map(|d| d.area()).sum();
        prop_assert!(fp.area() >= total);
    }

    /// Random matched-pair circuits: the canonical S-F encoding legalises into
    /// an exactly symmetric, overlap-free placement, and stays that way under
    /// the S-F move set.
    #[test]
    fn symmetric_legalisation_is_exact_for_matched_pairs(
        pair_dims in proptest::collection::vec((5i64..80, 5i64..80), 1..4),
        free_dims in proptest::collection::vec((5i64..80, 5i64..80), 0..4),
        self_dims in proptest::collection::vec((3i64..40, 5i64..80), 0..2),
        seed in 0u64..1000,
        moves in 0usize..30,
    ) {
        let mut netlist = Netlist::new("prop");
        let mut group = SymmetryGroup::new("g");
        for (k, &(w, h)) in pair_dims.iter().enumerate() {
            let l = netlist.add_module(Module::new(format!("L{k}"), Dims::new(w, h)));
            let r = netlist.add_module(Module::new(format!("R{k}"), Dims::new(w, h)));
            group = group.with_pair(l, r);
        }
        // self-symmetric cells share one width parity (even) so an exact axis exists
        for (k, &(w, h)) in self_dims.iter().enumerate() {
            let m = netlist.add_module(Module::new(format!("S{k}"), Dims::new(w * 2, h)));
            group = group.with_self_symmetric(m);
        }
        for (k, &(w, h)) in free_dims.iter().enumerate() {
            netlist.add_module(Module::new(format!("F{k}"), Dims::new(w, h)));
        }
        let mut constraints = ConstraintSet::new();
        constraints.add_symmetry_group(group);

        let modules: Vec<ModuleId> = netlist.module_ids().collect();
        let mut sp = canonical_symmetric_feasible(&modules, &constraints);
        let move_set = SymmetricMoveSet::new(constraints.clone());
        let mut rng = apls_anneal::rng::SeededRng::new(seed);
        for _ in 0..moves {
            move_set.perturb(&mut sp, &mut rng);
        }
        prop_assert!(is_symmetric_feasible_for_all(&sp, &constraints));

        let placer = SymmetricPlacer::new(&netlist, &constraints);
        let placement = placer.place(&sp);
        prop_assert!(placement.is_complete());
        prop_assert_eq!(placement.metrics(&netlist).overlap_area, 0);
        prop_assert_eq!(placement.symmetry_error(&constraints), 0);
    }

    /// Undo-log rollback restores a sequence-pair exactly after any applied
    /// S-F move, and failed moves leave the encoding untouched (they are
    /// undone internally through the same log).
    #[test]
    fn undo_log_restores_sequence_pairs_exactly(
        n_pairs in 1usize..4,
        n_self in 0usize..2,
        n_free in 0usize..5,
        seed in 0u64..1000,
        checks in 1usize..40,
    ) {
        let n = n_pairs * 2 + n_self + n_free;
        let modules: Vec<ModuleId> = (0..n).map(id).collect();
        let mut constraints = ConstraintSet::new();
        let mut group = SymmetryGroup::new("g");
        for k in 0..n_pairs {
            group = group.with_pair(id(2 * k), id(2 * k + 1));
        }
        for k in 0..n_self {
            group = group.with_self_symmetric(id(n_pairs * 2 + k));
        }
        constraints.add_symmetry_group(group);
        let mut sp = canonical_symmetric_feasible(&modules, &constraints);
        let move_set = SymmetricMoveSet::new(constraints.clone());
        let mut rng = apls_anneal::rng::SeededRng::new(seed);
        let mut log = apls_seqpair::SpUndoLog::default();
        for _ in 0..checks {
            let before = sp.clone();
            let applied = move_set.perturb_logged(&mut sp, &mut rng, &mut log);
            if applied {
                sp.undo(&mut log);
            } else {
                // a rejected move must already have been rolled back
                prop_assert!(log.is_empty());
            }
            prop_assert_eq!(&sp, &before);
            prop_assert!(sp.is_consistent());
            // drift so the next check starts from a different encoding
            move_set.perturb(&mut sp, &mut rng);
        }
    }

    /// The S-F move set never leaves the symmetric-feasible subspace and never
    /// corrupts the permutations.
    #[test]
    fn move_set_preserves_invariants(
        n_pairs in 1usize..4,
        n_free in 0usize..4,
        seed in 0u64..500,
    ) {
        let n = n_pairs * 2 + n_free;
        let modules: Vec<ModuleId> = (0..n).map(id).collect();
        let mut constraints = ConstraintSet::new();
        let mut group = SymmetryGroup::new("g");
        for k in 0..n_pairs {
            group = group.with_pair(id(2 * k), id(2 * k + 1));
        }
        constraints.add_symmetry_group(group);
        let mut sp = canonical_symmetric_feasible(&modules, &constraints);
        let move_set = SymmetricMoveSet::new(constraints.clone());
        let mut rng = apls_anneal::rng::SeededRng::new(seed);
        for _ in 0..50 {
            move_set.perturb(&mut sp, &mut rng);
            prop_assert!(sp.is_consistent());
            prop_assert!(is_symmetric_feasible_for_all(&sp, &constraints));
        }
    }
}
