//! Property tests for the `.apls` format: `parse(serialize(c)) == c` over
//! generated benchmark circuits (with symmetry / common-centroid / proximity
//! groups and multi-level hierarchy), and the canonical form is a serializer
//! fixed point.

use apls_circuit::benchmarks::{generate, GeneratorConfig};
use apls_circuit::Module;
use apls_geometry::Dims;
use apls_io::{circuit_fingerprint, parse_circuit, serialize_circuit};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (1usize..=60, 0u64..1_000_000, 0u64..=1000, 0u64..=1000, 0u64..=1000).prop_map(
        |(module_count, seed, sym, cc, prox)| GeneratorConfig {
            module_count,
            seed,
            // fractions in [0, 1/3] each, so all three constraint kinds appear
            symmetry_fraction: sym as f64 / 3000.0,
            common_centroid_fraction: cc as f64 / 3000.0,
            proximity_fraction: prox as f64 / 3000.0,
            ..GeneratorConfig::default()
        },
    )
}

/// Names drawn from a character set that exercises quoting and escaping.
fn arb_name() -> impl Strategy<Value = String> {
    const CHARS: [char; 13] =
        ['a', 'Z', '0', '_', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', 'µ', '好'];
    proptest::collection::vec(0usize..CHARS.len(), 1..12)
        .prop_map(|picks| picks.into_iter().map(|i| CHARS[i]).collect())
}

proptest! {
    #[test]
    fn generated_circuits_round_trip(config in arb_config()) {
        let circuit = generate("prop", config);
        let text = serialize_circuit(&circuit);
        let parsed = parse_circuit(&text)
            .unwrap_or_else(|e| panic!("seed {}: {e}\n{text}", config.seed));
        prop_assert_eq!(&parsed.name, &circuit.name);
        prop_assert_eq!(&parsed.netlist, &circuit.netlist);
        prop_assert_eq!(&parsed.hierarchy, &circuit.hierarchy);
        prop_assert_eq!(&parsed.constraints, &circuit.constraints);
        // canonical form is a fixed point of serialize ∘ parse
        prop_assert_eq!(serialize_circuit(&parsed), text);
        // and the content fingerprint is invariant under the round trip
        prop_assert_eq!(circuit_fingerprint(&parsed), circuit_fingerprint(&circuit));
    }

    #[test]
    fn hostile_names_round_trip(name in arb_name(), seed in 0u64..1000) {
        let mut circuit = generate("n", GeneratorConfig {
            module_count: 5,
            seed,
            ..GeneratorConfig::default()
        });
        circuit.name = name.clone();
        // also smuggle the name into a module, where it travels quoted too
        circuit.netlist.add_module(Module::new(name, Dims::new(7, 9)));
        // (the extra module is outside the hierarchy, so compare netlists only)
        let text = serialize_circuit(&circuit);
        match parse_circuit(&text) {
            Ok(parsed) => {
                prop_assert_eq!(&parsed.name, &circuit.name);
                prop_assert_eq!(&parsed.netlist, &circuit.netlist);
            }
            // the added module is not covered by the hierarchy tree, which the
            // parser rightly rejects — but only with that exact complaint
            Err(e) => prop_assert!(e.message.contains("not covered"), "{}", e),
        }
    }

    #[test]
    fn fingerprints_separate_distinct_circuits(seed_a in 0u64..500, seed_b in 0u64..500) {
        let a = generate("fp", GeneratorConfig { module_count: 12, seed: seed_a, ..GeneratorConfig::default() });
        let b = generate("fp", GeneratorConfig { module_count: 12, seed: seed_b, ..GeneratorConfig::default() });
        if seed_a == seed_b {
            prop_assert_eq!(circuit_fingerprint(&a), circuit_fingerprint(&b));
        } else {
            // distinct seeds make distinct circuits (benchmarks.rs pins this),
            // and the canonical form must separate them
            prop_assert_ne!(serialize_circuit(&a), serialize_circuit(&b));
        }
    }
}
