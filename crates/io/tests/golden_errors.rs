//! Golden-error tests: every parser diagnostic must carry the exact
//! `line:col` of the offending token, rendered as `line:col: message`.

use apls_io::parse_circuit;

/// A well-formed minimal document the error cases are derived from.
const GOOD: &str = "apls 1\n\
circuit \"c\"\n\
module \"a\" 10 20 rotate\n\
module \"b\" 5 5 norotate\n\
net \"n\" 1.5 0 1\n\
node 0 leaf 0\n\
node 1 leaf 1\n\
node 2 group \"top\" none 0 1\n\
root 2\n";

#[test]
fn the_good_document_parses() {
    let circuit = parse_circuit(GOOD).expect("good document parses");
    assert_eq!(circuit.netlist.module_count(), 2);
    assert_eq!(circuit.hierarchy.node_count(), 3);
}

/// `(document, expected line, expected col, expected message fragment)`.
const GOLDEN: &[(&str, usize, usize, &str)] = &[
    // lexer-level
    ("apls 1\ncircuit \"c\"\nmodule ?\n", 3, 8, "unexpected character '?'"),
    ("apls 1\ncircuit \"unterminated\n", 2, 9, "unterminated string"),
    ("apls 1\ncircuit \"bad\\x\"\n", 2, 14, "unknown escape sequence '\\x'"),
    // header / structure
    ("circuit \"c\"\n", 1, 1, "expected 'apls'"),
    ("apls 2\ncircuit \"c\"\n", 1, 6, "unsupported format version 2"),
    ("apls 1\nmodule \"a\" 1 1 rotate\n", 2, 1, "expected 'circuit'"),
    ("apls 1\ncircuit \"c\"\ncircuit \"d\"\n", 3, 1, "duplicate 'circuit' directive"),
    // a late 'netlist' would silently discard already-parsed body directives
    ("apls 1\ncircuit \"c\"\nnet \"n\" 1\nnetlist \"y\"\n", 4, 1, "'netlist' must appear before any other directive"),
    ("apls 1\ncircuit \"c\"\nnetlist \"y\"\nnetlist \"z\"\n", 4, 1, "'netlist' must appear before any other directive"),
    ("apls 1\ncircuit \"c\"\nwibble\n", 3, 1, "unknown directive 'wibble'"),
    // tokens in the wrong place
    ("apls 1\ncircuit 7\n", 2, 9, "expected circuit name (a quoted string), found 7"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 maybe\n", 3, 16, "expected 'rotate' or 'norotate'"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" -4 1 rotate\n", 3, 12, "module width must be non-negative"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 rotate\nnet \"n\"\n", 4, 8, "expected net weight, found end of line"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 rotate junk\n", 3, 23, "expected 'variant', found 'junk'"),
    // dangling references
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 rotate\nnet \"n\" 1 0 5\n", 4, 13, "module index 5 out of range"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 rotate\nsym \"s\" pairs 0 9 selfs\n", 4, 17, "module index 9 out of range"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 rotate\nnode 0 leaf 0\nnode 1 group \"g\" none 5\n", 5, 23, "child node 5 is not declared yet"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 rotate\nnode 0 leaf 0\nroot 3\n", 5, 6, "root node 3 is not declared"),
    ("apls 1\ncircuit \"c\"\nmodule \"a\" 1 1 rotate\nnode 4 leaf 0\n", 4, 6, "hierarchy node ids must be dense and ordered: expected 0, found 4"),
];

#[test]
fn diagnostics_carry_exact_positions() {
    for (doc, line, col, fragment) in GOLDEN {
        let err = parse_circuit(doc).expect_err(doc);
        assert_eq!((err.line, err.col), (*line, *col), "wrong position for {doc:?}: got {err}");
        assert!(
            err.message.contains(fragment),
            "message for {doc:?} should contain {fragment:?}, got: {err}"
        );
        // the Display format is the `line:col: message` contract
        assert_eq!(err.to_string(), format!("{}:{}: {}", err.line, err.col, err.message));
    }
}

#[test]
fn every_prefix_truncation_errors_but_never_panics() {
    // Chop the good document after every line: the parser must fail cleanly
    // (missing root / missing coverage), never panic.
    let lines: Vec<&str> = GOOD.lines().collect();
    for n in 0..lines.len() {
        let doc = lines[..n].iter().map(|l| format!("{l}\n")).collect::<String>();
        let result = parse_circuit(&doc);
        assert!(result.is_err(), "prefix of {n} lines should not parse");
    }
}
