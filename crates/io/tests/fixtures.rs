//! The checked-in `.apls` fixtures under `examples/circuits/` are the
//! canonical serializations of the seven bundled benchmark circuits — bit
//! for bit. Regenerate with `apls convert --circuit <name> --out <file>`
//! after intentional format or generator changes.

use apls_circuit::benchmarks;
use apls_io::{parse_circuit, serialize_circuit};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/circuits")
        .join(format!("{name}.apls"))
}

#[test]
fn fixtures_are_canonical_and_bit_exact() {
    for name in benchmarks::names() {
        let circuit = benchmarks::by_name(name).expect("bundled circuit resolves");
        let path = fixture_path(name);
        let fixture = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        // the fixture IS the canonical form…
        assert_eq!(
            serialize_circuit(&circuit),
            fixture,
            "{name}: fixture is stale, regenerate with `apls convert --circuit {name}`"
        );
        // …and parses back to the identical circuit (bit-exact round trip)
        let parsed = parse_circuit(&fixture).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.name, circuit.name, "{name}");
        assert_eq!(parsed.netlist, circuit.netlist, "{name}");
        assert_eq!(parsed.hierarchy, circuit.hierarchy, "{name}");
        assert_eq!(parsed.constraints, circuit.constraints, "{name}");
    }
}

#[test]
fn no_stray_fixtures() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/circuits");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixture directory exists")
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".apls"))
        .map(|n| n.trim_end_matches(".apls").to_string())
        .collect();
    found.sort();
    let mut expected: Vec<String> = benchmarks::names().iter().map(ToString::to_string).collect();
    expected.sort();
    assert_eq!(found, expected, "examples/circuits/ must hold exactly the bundled circuits");
}
