//! Canonical serializer for the `.apls` format.
//!
//! The canonical form is fully determined by the circuit: a fixed directive
//! order (header, names, modules, nets, symmetry / common-centroid /
//! proximity groups, hierarchy nodes, root), insertion order within every
//! category, exactly one space between tokens, no comments, and shortest
//! round-trip formatting for net weights. This makes the serializer a fixed
//! point of the parser — `serialize(parse(s)) == s` for every canonical `s` —
//! and its output a stable content key (see [`crate::circuit_fingerprint`]).

use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::HierarchyNode;
use std::fmt::Write as _;

/// Serializes a circuit to canonical `.apls` text.
#[must_use]
pub fn serialize_circuit(circuit: &BenchmarkCircuit) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "apls {}", crate::FORMAT_VERSION);
    let _ = writeln!(out, "circuit {}", quote(&circuit.name));
    if circuit.netlist.name() != circuit.name {
        let _ = writeln!(out, "netlist {}", quote(circuit.netlist.name()));
    }

    for (_, module) in circuit.netlist.modules() {
        let dims = module.dims();
        let rot = if module.rotation_allowed() { "rotate" } else { "norotate" };
        let _ = write!(out, "module {} {} {} {rot}", quote(module.name()), dims.w, dims.h);
        for variant in &module.variants()[1..] {
            let _ = write!(out, " variant {} {} {}", variant.dims.w, variant.dims.h, variant.folds);
        }
        out.push('\n');
    }

    for (_, net) in circuit.netlist.nets() {
        let _ = write!(out, "net {} {}", quote(net.name()), fmt_weight(net.weight()));
        for pin in net.pins() {
            let _ = write!(out, " {}", pin.index());
        }
        out.push('\n');
    }

    for group in circuit.constraints.symmetry_groups() {
        let _ = write!(out, "sym {} pairs", quote(group.name()));
        for &(l, r) in group.pairs() {
            let _ = write!(out, " {} {}", l.index(), r.index());
        }
        out.push_str(" selfs");
        for &m in group.self_symmetric() {
            let _ = write!(out, " {}", m.index());
        }
        out.push('\n');
    }

    for group in circuit.constraints.common_centroid_groups() {
        let _ = write!(out, "cc {} a", quote(group.name()));
        for &m in group.units_a() {
            let _ = write!(out, " {}", m.index());
        }
        out.push_str(" b");
        for &m in group.units_b() {
            let _ = write!(out, " {}", m.index());
        }
        out.push('\n');
    }

    for group in circuit.constraints.proximity_groups() {
        let _ = write!(out, "prox {} gap {} members", quote(group.name()), group.max_gap());
        for &m in group.members() {
            let _ = write!(out, " {}", m.index());
        }
        out.push('\n');
    }

    for index in 0..circuit.hierarchy.node_count() {
        let id = apls_circuit::HierarchyNodeId::from_index(index);
        match circuit.hierarchy.node(id) {
            HierarchyNode::Leaf { module } => {
                let _ = writeln!(out, "node {index} leaf {}", module.index());
            }
            HierarchyNode::Internal { name, children, constraint } => {
                let kind = match constraint {
                    Some(apls_circuit::ConstraintKind::Symmetry) => "sym",
                    Some(apls_circuit::ConstraintKind::CommonCentroid) => "cc",
                    Some(apls_circuit::ConstraintKind::Proximity) => "prox",
                    None => "none",
                };
                let _ = write!(out, "node {index} group {} {kind}", quote(name));
                for child in children {
                    let _ = write!(out, " {}", child.index());
                }
                out.push('\n');
            }
        }
    }

    if let Some(root) = circuit.hierarchy.root() {
        let _ = writeln!(out, "root {}", root.index());
    }
    out
}

/// Quotes a name. The named escapes cover the common cases; any other
/// control character goes out as `\uXXXX` so every name — however hostile —
/// serializes to something the lexer accepts (the round-trip guarantee).
fn quote(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest decimal representation that parses back to the same `f64`
/// (Rust's `Display` guarantee), so weights round-trip exactly.
fn fmt_weight(weight: f64) -> String {
    debug_assert!(weight.is_finite(), "net weights must be finite");
    format!("{weight}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_circuit;
    use apls_circuit::benchmarks;

    #[test]
    fn weights_round_trip_exactly() {
        for w in [1.0f64, 2.0, 1.5, 0.1, 1.0 / 3.0, 123456.789] {
            let text = fmt_weight(w);
            assert_eq!(text.parse::<f64>().unwrap(), w, "{text}");
        }
        assert_eq!(fmt_weight(2.0), "2");
    }

    #[test]
    fn names_with_specials_round_trip() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        // control characters outside the named escapes go out as \uXXXX
        assert_eq!(quote("a\u{1}b"), "\"a\\u0001b\"");
        let mut hostile = benchmarks::miller_opamp_fig6();
        hostile.name = "ctl\u{1}\u{1f}name".to_string();
        let text = serialize_circuit(&hostile);
        let parsed = parse_circuit(&text).expect("control characters round-trip via \\u");
        assert_eq!(parsed.name, hostile.name);
        assert_eq!(serialize_circuit(&parsed), text);
        let mut circuit = benchmarks::miller_opamp_fig6();
        circuit.name = "odd \"name\"\twith\nspecials".to_string();
        let text = serialize_circuit(&circuit);
        let parsed = parse_circuit(&text).expect("parses");
        assert_eq!(parsed.name, circuit.name);
        // renamed circuit keeps the original netlist via the 'netlist' directive
        assert_eq!(parsed.netlist, circuit.netlist);
        assert_eq!(serialize_circuit(&parsed), text);
    }

    #[test]
    fn canonical_form_is_stable() {
        let circuit = benchmarks::folded_cascode();
        assert_eq!(serialize_circuit(&circuit), serialize_circuit(&circuit));
    }

    #[test]
    fn fixture_shape_smoke() {
        let text = serialize_circuit(&benchmarks::miller_opamp_fig6());
        assert!(text.starts_with("apls 1\ncircuit \"miller_opamp\"\n"));
        assert!(text.contains("module \"P1\" 60 30 norotate\n"));
        assert!(text.contains("sym \"dp_sym\" pairs 0 1 2 3 selfs\n"));
        assert!(text.contains("prox \"bias_prox\" gap 10 members 4 5 6\n"));
        assert!(text.ends_with("root 14\n"));
    }
}
