//! The `.apls` circuit interchange format.
//!
//! Everything the placement engines consume — a [`BenchmarkCircuit`]'s
//! netlist, shape variants, weighted nets, layout design hierarchy and
//! symmetry / common-centroid / proximity groups — round-trips through a
//! line-oriented textual format:
//!
//! ```text
//! apls 1
//! circuit "miller_opamp"
//! module "P1" 60 30 norotate
//! module "C" 90 90 rotate
//! net "diff_out" 2 1 3 7 8
//! sym "dp_sym" pairs 0 1 2 3 selfs
//! cc "load_cc" a 2 b 3
//! prox "bias_prox" gap 10 members 4 5 6
//! node 0 leaf 0
//! node 9 group "DP" sym 0 1
//! root 14
//! ```
//!
//! * [`parse_circuit`] — a hand-rolled recursive-descent parser producing
//!   positioned error messages (`line:col: expected …`, see [`ParseError`]);
//! * [`serialize_circuit`] — the canonical serializer. Canonical form is a
//!   *fixed point*: `serialize(parse(s)) == s` for every canonical document
//!   `s`, and `parse(serialize(c))` reproduces `c` exactly (module ids, net
//!   order, hierarchy node ids, constraint groups — everything the engines
//!   and the seed streams key off);
//! * [`canonical_hash`] / [`circuit_fingerprint`] — stable FNV-1a content
//!   hashes of the canonical form, used by `apls-service` as the circuit
//!   component of its result-cache key.
//!
//! The grammar is documented in DESIGN.md §10; the seven bundled benchmark
//! circuits are checked in under `examples/circuits/*.apls`.
//!
//! # Example
//!
//! ```
//! use apls_circuit::benchmarks;
//! use apls_io::{parse_circuit, serialize_circuit};
//!
//! let circuit = benchmarks::miller_opamp_fig6();
//! let text = serialize_circuit(&circuit);
//! let parsed = parse_circuit(&text).expect("canonical form parses");
//! assert_eq!(parsed.netlist, circuit.netlist);
//! assert_eq!(serialize_circuit(&parsed), text); // fixed point
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod parse;
mod ser;

pub use lexer::ParseError;
pub use parse::parse_circuit;
pub use ser::serialize_circuit;

use apls_circuit::benchmarks::BenchmarkCircuit;

/// The format version emitted and accepted by this crate.
pub const FORMAT_VERSION: u32 = 1;

/// Stable 64-bit FNV-1a hash of a byte string.
///
/// Used to key `apls-service`'s result cache by canonical circuit text; the
/// function is pinned here (rather than `std::hash`) so the hash is stable
/// across Rust releases and platforms.
#[must_use]
pub fn canonical_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content fingerprint of a circuit: the [`canonical_hash`] of its canonical
/// `.apls` serialization. Circuits that are indistinguishable to the
/// placement engines always share a fingerprint; as with any 64-bit
/// non-cryptographic hash, distinct circuits can collide, so treat it as a
/// summary for logs and change detection, not as proof of identity
/// (`apls-service` keys its cache on the full canonical text for exactly
/// this reason).
#[must_use]
pub fn circuit_fingerprint(circuit: &BenchmarkCircuit) -> u64 {
    canonical_hash(&serialize_circuit(circuit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks;

    #[test]
    fn fingerprint_is_stable_per_circuit() {
        let a = circuit_fingerprint(&benchmarks::miller_opamp_fig6());
        let b = circuit_fingerprint(&benchmarks::miller_opamp_fig6());
        assert_eq!(a, b);
        let c = circuit_fingerprint(&benchmarks::miller_v2());
        assert_ne!(a, c);
    }

    #[test]
    fn fnv_vector() {
        // standard FNV-1a test vectors
        assert_eq!(canonical_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(canonical_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
