//! Line-oriented lexer for the `.apls` format.
//!
//! The format is strictly line-based: every directive occupies one line, `#`
//! starts a comment running to the end of the line, and blank lines are
//! ignored. The lexer therefore produces one token list per non-empty line,
//! with every token carrying its 1-based `(line, column)` position so the
//! parser can attach exact locations to its diagnostics.

use std::fmt;

/// A parse diagnostic with its exact source position.
///
/// Renders as `line:col: message` — the format asserted by the golden-error
/// tests and surfaced verbatim by `apls-service` for inline circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    /// What went wrong, usually `expected …, found …`.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError { line, col, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// What a token is; the payload lives in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// A bare keyword: `module`, `rotate`, `pairs`, …
    Word,
    /// An (unsigned or negative) numeric literal, kept as raw text.
    Number,
    /// A quoted string, stored with escapes already decoded.
    Str,
}

/// One lexed token with its position.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
    /// Raw source length in characters (including quotes and escapes for
    /// strings); used to position "expected …, found end of line" errors.
    pub len: usize,
}

/// One non-empty source line.
#[derive(Debug, Clone)]
pub(crate) struct Line {
    /// 1-based line number.
    pub number: usize,
    pub tokens: Vec<Token>,
}

/// Splits a document into tokenised lines (blank and comment-only lines are
/// dropped).
pub(crate) fn lex(text: &str) -> Result<Vec<Line>, ParseError> {
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        let tokens = lex_line(raw, number)?;
        if !tokens.is_empty() {
            lines.push(Line { number, tokens });
        }
    }
    Ok(lines)
}

fn lex_line(raw: &str, line: usize) -> Result<Vec<Token>, ParseError> {
    let chars: Vec<char> = raw.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let col = i + 1;
        if c == '#' {
            break; // comment to end of line
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '"' {
            let (value, next) = lex_string(&chars, i, line)?;
            tokens.push(Token { kind: TokenKind::Str, text: value, line, col, len: next - i });
            i = next;
        } else if c.is_ascii_digit()
            || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            i += 1;
            while i < chars.len()
                && (chars[i].is_ascii_digit() || matches!(chars[i], '.' | 'e' | 'E' | '+' | '-'))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            tokens.push(Token { kind: TokenKind::Number, text, line, col, len: i - start });
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            tokens.push(Token { kind: TokenKind::Word, text, line, col, len: i - start });
        } else {
            return Err(ParseError::new(line, col, format!("unexpected character '{c}'")));
        }
    }
    Ok(tokens)
}

/// Lexes a quoted string starting at `chars[start] == '"'`; returns the
/// decoded value and the index just past the closing quote.
fn lex_string(chars: &[char], start: usize, line: usize) -> Result<(String, usize), ParseError> {
    let mut out = String::new();
    let mut i = start + 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let esc = chars.get(i + 1).copied().ok_or_else(|| {
                    ParseError::new(line, i + 2, "unterminated escape sequence".to_string())
                })?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        // \uXXXX — exactly four hex digits, as in JSON; the
                        // serializer uses this for other control characters
                        let mut code = 0u32;
                        for k in 0..4 {
                            let digit = chars
                                .get(i + 2 + k)
                                .and_then(|d| d.to_digit(16))
                                .ok_or_else(|| {
                                    ParseError::new(
                                        line,
                                        i + 2 + k + 1,
                                        "\\u escape needs four hex digits".to_string(),
                                    )
                                })?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).ok_or_else(|| {
                            ParseError::new(
                                line,
                                i + 2,
                                format!("\\u{code:04x} is not a valid character"),
                            )
                        })?);
                        i += 4;
                    }
                    other => {
                        return Err(ParseError::new(
                            line,
                            i + 2,
                            format!("unknown escape sequence '\\{other}'"),
                        ))
                    }
                }
                i += 2;
            }
            c if (c as u32) < 0x20 => {
                return Err(ParseError::new(
                    line,
                    i + 1,
                    "raw control character in string (use \\n, \\r, \\t or \\uXXXX)".to_string(),
                ))
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err(ParseError::new(line, start + 1, "unterminated string literal".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based_chars() {
        let lines = lex("apls 1\n  module \"a b\" 3 4\n").expect("lexes");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].tokens[0].col, 1);
        assert_eq!(lines[0].tokens[1].col, 6);
        assert_eq!(lines[1].number, 2);
        assert_eq!(lines[1].tokens[0].col, 3);
        assert_eq!(lines[1].tokens[1].text, "a b");
        assert_eq!(lines[1].tokens[1].col, 10);
    }

    #[test]
    fn comments_and_blank_lines_vanish() {
        let lines = lex("# header\n\napls 1 # trailing\n").expect("lexes");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].tokens.len(), 2);
    }

    #[test]
    fn escapes_decode() {
        let lines = lex("circuit \"a\\\"b\\\\c\\nd\\te\"").expect("lexes");
        assert_eq!(lines[0].tokens[1].text, "a\"b\\c\nd\te");
    }

    #[test]
    fn unicode_escapes_decode() {
        let lines = lex("circuit \"a\\u0001b\\u00e9\"").expect("lexes");
        assert_eq!(lines[0].tokens[1].text, "a\u{1}bé");
        let err = lex("circuit \"\\u00\"").unwrap_err();
        assert!(err.message.contains("four hex digits"), "{err}");
    }

    #[test]
    fn negative_numbers_lex_as_one_token() {
        let lines = lex("net \"x\" -1.5 0").expect("lexes");
        assert_eq!(lines[0].tokens[2].text, "-1.5");
        assert_eq!(lines[0].tokens[2].kind, TokenKind::Number);
    }

    #[test]
    fn lexer_errors_carry_positions() {
        let err = lex("module @").unwrap_err();
        assert_eq!((err.line, err.col), (1, 8));
        assert!(err.to_string().starts_with("1:8: "));

        let err = lex("a\nb \"unterminated").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));

        let err = lex("x \"bad\\q\"").unwrap_err();
        assert_eq!((err.line, err.col), (1, 8));
        assert!(err.message.contains("unknown escape"));
    }
}
