//! Recursive-descent parser for the `.apls` format.
//!
//! Grammar (one directive per line, `#` comments, blank lines ignored):
//!
//! ```text
//! document := header circuit [netlist] body*
//! header   := "apls" 1
//! circuit  := "circuit" STRING
//! netlist  := "netlist" STRING              # only when it differs from the circuit name
//! body     := module | net | sym | cc | prox | node | root
//! module   := "module" STRING INT INT ("rotate" | "norotate") ("variant" INT INT INT)*
//! net      := "net" STRING FLOAT INT*       # weight, then pin module indices
//! sym      := "sym" STRING "pairs" (INT INT)* "selfs" INT*
//! cc       := "cc" STRING "a" INT* "b" INT*
//! prox     := "prox" STRING "gap" INT "members" INT*
//! node     := "node" INT ("leaf" INT | "group" STRING ("sym"|"cc"|"prox"|"none") INT+)
//! root     := "root" INT
//! ```
//!
//! Module references are dense insertion indices (the `ModuleId` space);
//! hierarchy node ids must be declared densely in order, children before
//! parents, exactly as [`apls_circuit::HierarchyTree`] hands them out — which
//! is what makes `parse(serialize(c)) == c` an identity on ids, not just on
//! structure. All references are checked as they are read, with positioned
//! errors; after the last line the circuit-level invariants
//! ([`apls_circuit::HierarchyTree::validate`] and
//! [`apls_circuit::ConstraintSet::validate`]) are enforced as well.

use crate::lexer::{lex, Line, ParseError, Token, TokenKind};
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::{
    CommonCentroidGroup, ConstraintKind, ConstraintSet, HierarchyNodeId, HierarchyTree, Module,
    ModuleId, Net, Netlist, ProximityGroup, SymmetryGroup,
};
use apls_geometry::{Coord, Dims};

/// Parses a `.apls` document into a full benchmark circuit.
///
/// # Errors
///
/// Returns a [`ParseError`] with an exact `line:col` position for lexical and
/// syntactic problems and for dangling references (module indices, hierarchy
/// node ids). Circuit-level consistency problems (e.g. a module missing from
/// the hierarchy tree) are reported at the position of the `root` directive.
pub fn parse_circuit(text: &str) -> Result<BenchmarkCircuit, ParseError> {
    let lines = lex(text)?;
    let last_line = text.lines().count().max(1);
    let mut lines = lines.into_iter();

    // header
    let header = lines.next().ok_or_else(|| {
        ParseError::new(last_line, 1, "expected 'apls <version>' header".to_string())
    })?;
    parse_header(&header)?;

    // circuit name
    let name_line = lines
        .next()
        .ok_or_else(|| ParseError::new(last_line, 1, "expected 'circuit' directive".to_string()))?;
    let mut cursor = Cursor::new(&name_line);
    cursor.expect_word("circuit")?;
    let circuit_name = cursor.string("circuit name")?;
    cursor.finish()?;

    let mut st = State {
        netlist: Netlist::new(circuit_name.clone()),
        netlist_renamed: false,
        body_seen: false,
        hierarchy: HierarchyTree::new(),
        constraints: ConstraintSet::new(),
        root_pos: None,
    };

    for line in lines {
        let mut c = Cursor::new(&line);
        let keyword = c.word("directive")?;
        if keyword != "netlist" {
            st.body_seen = true;
        }
        match keyword.as_str() {
            "netlist" => {
                // replacing the netlist after any body directive would
                // silently discard already-parsed nets or modules
                if st.body_seen || st.netlist_renamed {
                    return Err(c.err_prev("'netlist' must appear before any other directive"));
                }
                let name = c.string("netlist name")?;
                st.netlist = Netlist::new(name);
                st.netlist_renamed = true;
            }
            "module" => parse_module(&mut c, &mut st)?,
            "net" => parse_net(&mut c, &mut st)?,
            "sym" => parse_sym(&mut c, &mut st)?,
            "cc" => parse_cc(&mut c, &mut st)?,
            "prox" => parse_prox(&mut c, &mut st)?,
            "node" => parse_node(&mut c, &mut st)?,
            "root" => parse_root(&mut c, &mut st)?,
            "apls" | "circuit" => {
                return Err(c.err_prev(format!("duplicate '{keyword}' directive")))
            }
            other => {
                return Err(c.err_prev(format!(
                "unknown directive '{other}' (expected module, net, sym, cc, prox, node or root)"
            )))
            }
        }
        c.finish()?;
    }

    let Some((root_line, root_col)) = st.root_pos else {
        return Err(ParseError::new(last_line, 1, "missing 'root' directive".to_string()));
    };
    if let Err(problems) = st.hierarchy.validate(&st.netlist) {
        return Err(ParseError::new(
            root_line,
            root_col,
            format!("inconsistent hierarchy: {}", problems.join("; ")),
        ));
    }
    if let Err(problems) = st.constraints.validate(&st.netlist) {
        return Err(ParseError::new(
            root_line,
            root_col,
            format!("inconsistent constraints: {}", problems.join("; ")),
        ));
    }
    Ok(BenchmarkCircuit {
        name: circuit_name,
        netlist: st.netlist,
        hierarchy: st.hierarchy,
        constraints: st.constraints,
    })
}

/// Parser state accumulated across directives.
struct State {
    netlist: Netlist,
    netlist_renamed: bool,
    body_seen: bool,
    hierarchy: HierarchyTree,
    constraints: ConstraintSet,
    root_pos: Option<(usize, usize)>,
}

fn parse_header(line: &Line) -> Result<(), ParseError> {
    let mut c = Cursor::new(line);
    c.expect_word("apls")?;
    let version = c.u64("format version")?;
    if version != u64::from(crate::FORMAT_VERSION) {
        return Err(c.err_prev(format!(
            "unsupported format version {version} (this reader supports {})",
            crate::FORMAT_VERSION
        )));
    }
    c.finish()
}

fn parse_module(c: &mut Cursor<'_>, st: &mut State) -> Result<(), ParseError> {
    let name = c.string("module name")?;
    let w = c.coord("module width")?;
    let h = c.coord("module height")?;
    let mut module = Module::new(name, Dims::new(w, h));
    match c.word("'rotate' or 'norotate'")?.as_str() {
        "rotate" => {}
        "norotate" => module = module.with_rotation_allowed(false),
        other => {
            return Err(c.err_prev(format!("expected 'rotate' or 'norotate', found '{other}'")))
        }
    }
    while !c.at_end() {
        c.expect_word("variant")?;
        let vw = c.coord("variant width")?;
        let vh = c.coord("variant height")?;
        let folds = c.u32("variant folds")?;
        module = module.with_variant(Dims::new(vw, vh), folds);
    }
    st.netlist.add_module(module);
    Ok(())
}

fn parse_net(c: &mut Cursor<'_>, st: &mut State) -> Result<(), ParseError> {
    let name = c.string("net name")?;
    let weight = c.f64("net weight")?;
    let mut pins = Vec::new();
    while !c.at_end() {
        pins.push(c.module_ref(st)?);
    }
    st.netlist.add_weighted_net(Net::new(name, pins).with_weight(weight));
    Ok(())
}

fn parse_sym(c: &mut Cursor<'_>, st: &mut State) -> Result<(), ParseError> {
    let name = c.string("symmetry group name")?;
    let mut group = SymmetryGroup::new(name);
    c.expect_word("pairs")?;
    while !c.next_is_word("selfs") {
        let left = c.module_ref_expected(st, "module index or 'selfs'")?;
        let right = c.module_ref(st)?;
        group = group.with_pair(left, right);
    }
    c.expect_word("selfs")?;
    while !c.at_end() {
        group = group.with_self_symmetric(c.module_ref(st)?);
    }
    st.constraints.add_symmetry_group(group);
    Ok(())
}

fn parse_cc(c: &mut Cursor<'_>, st: &mut State) -> Result<(), ParseError> {
    let name = c.string("common-centroid group name")?;
    c.expect_word("a")?;
    let mut units_a = Vec::new();
    while !c.next_is_word("b") {
        units_a.push(c.module_ref_expected(st, "module index or 'b'")?);
    }
    c.expect_word("b")?;
    let mut units_b = Vec::new();
    while !c.at_end() {
        units_b.push(c.module_ref(st)?);
    }
    st.constraints.add_common_centroid_group(CommonCentroidGroup::new(name, units_a, units_b));
    Ok(())
}

fn parse_prox(c: &mut Cursor<'_>, st: &mut State) -> Result<(), ParseError> {
    let name = c.string("proximity group name")?;
    c.expect_word("gap")?;
    let gap = c.coord("proximity gap")?;
    c.expect_word("members")?;
    let mut members = Vec::new();
    while !c.at_end() {
        members.push(c.module_ref(st)?);
    }
    st.constraints.add_proximity_group(ProximityGroup::new(name, members).with_max_gap(gap));
    Ok(())
}

fn parse_node(c: &mut Cursor<'_>, st: &mut State) -> Result<(), ParseError> {
    let declared = c.usize("hierarchy node id")?;
    let expected = st.hierarchy.node_count();
    if declared != expected {
        return Err(c.err_prev(format!(
            "hierarchy node ids must be dense and ordered: expected {expected}, found {declared}"
        )));
    }
    match c.word("'leaf' or 'group'")?.as_str() {
        "leaf" => {
            let module = c.module_ref(st)?;
            st.hierarchy.add_leaf(module);
        }
        "group" => {
            let name = c.string("group name")?;
            let constraint = match c.word("'sym', 'cc', 'prox' or 'none'")?.as_str() {
                "sym" => Some(ConstraintKind::Symmetry),
                "cc" => Some(ConstraintKind::CommonCentroid),
                "prox" => Some(ConstraintKind::Proximity),
                "none" => None,
                other => {
                    return Err(c.err_prev(format!(
                        "expected 'sym', 'cc', 'prox' or 'none', found '{other}'"
                    )))
                }
            };
            let mut children = Vec::new();
            while !c.at_end() {
                let child = c.usize("child node id")?;
                if child >= expected {
                    return Err(c.err_prev(format!(
                        "child node {child} is not declared yet (children must precede parents)"
                    )));
                }
                children.push(HierarchyNodeId::from_index(child));
            }
            if children.is_empty() {
                return Err(c.err_eol("expected at least one child node id"));
            }
            st.hierarchy.add_internal(name, children, constraint);
        }
        other => return Err(c.err_prev(format!("expected 'leaf' or 'group', found '{other}'"))),
    }
    Ok(())
}

fn parse_root(c: &mut Cursor<'_>, st: &mut State) -> Result<(), ParseError> {
    let pos = (c.line.number, c.line.tokens[0].col);
    if st.root_pos.is_some() {
        return Err(c.err_prev("duplicate 'root' directive"));
    }
    let id = c.usize("root node id")?;
    if id >= st.hierarchy.node_count() {
        return Err(c.err_prev(format!("root node {id} is not declared")));
    }
    st.hierarchy.set_root(HierarchyNodeId::from_index(id));
    st.root_pos = Some(pos);
    Ok(())
}

/// Token cursor over one line, with positioned-error helpers.
struct Cursor<'a> {
    line: &'a Line,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a Line) -> Self {
        Cursor { line, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.line.tokens.len()
    }

    fn next_is_word(&self, word: &str) -> bool {
        self.line.tokens.get(self.pos).is_some_and(|t| t.kind == TokenKind::Word && t.text == word)
    }

    fn advance(&mut self, expected: &str) -> Result<&'a Token, ParseError> {
        let token = self
            .line
            .tokens
            .get(self.pos)
            .ok_or_else(|| self.err_eol(format!("expected {expected}, found end of line")))?;
        self.pos += 1;
        Ok(token)
    }

    /// Error at the column just past the last token of the line.
    fn err_eol(&self, message: impl Into<String>) -> ParseError {
        let col = self.line.tokens.last().map_or(1, |t| t.col + t.len);
        ParseError::new(self.line.number, col, message)
    }

    /// Error positioned at the token consumed last.
    fn err_prev(&self, message: impl Into<String>) -> ParseError {
        let token = &self.line.tokens[self.pos.saturating_sub(1).min(self.line.tokens.len() - 1)];
        ParseError::new(self.line.number, token.col, message)
    }

    fn word(&mut self, expected: &str) -> Result<String, ParseError> {
        let token = self.advance(expected)?;
        if token.kind != TokenKind::Word {
            return Err(ParseError::new(
                token.line,
                token.col,
                format!("expected {expected}, found {}", describe(token)),
            ));
        }
        Ok(token.text.clone())
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        let token = self.advance(&format!("'{word}'"))?;
        if token.kind != TokenKind::Word || token.text != word {
            return Err(ParseError::new(
                token.line,
                token.col,
                format!("expected '{word}', found {}", describe(token)),
            ));
        }
        Ok(())
    }

    fn string(&mut self, expected: &str) -> Result<String, ParseError> {
        let token = self.advance(expected)?;
        if token.kind != TokenKind::Str {
            return Err(ParseError::new(
                token.line,
                token.col,
                format!("expected {expected} (a quoted string), found {}", describe(token)),
            ));
        }
        Ok(token.text.clone())
    }

    fn number(&mut self, expected: &str) -> Result<&'a Token, ParseError> {
        let token = self.advance(expected)?;
        if token.kind != TokenKind::Number {
            return Err(ParseError::new(
                token.line,
                token.col,
                format!("expected {expected}, found {}", describe(token)),
            ));
        }
        Ok(token)
    }

    fn integer<T: std::str::FromStr>(&mut self, expected: &str) -> Result<T, ParseError> {
        let token = self.number(expected)?;
        token.text.parse().map_err(|_| {
            ParseError::new(
                token.line,
                token.col,
                format!("expected {expected} (an integer), found {}", token.text),
            )
        })
    }

    fn u32(&mut self, expected: &str) -> Result<u32, ParseError> {
        self.integer(expected)
    }

    fn u64(&mut self, expected: &str) -> Result<u64, ParseError> {
        self.integer(expected)
    }

    fn usize(&mut self, expected: &str) -> Result<usize, ParseError> {
        self.integer(expected)
    }

    fn coord(&mut self, expected: &str) -> Result<Coord, ParseError> {
        let token = self.number(expected)?;
        let value: Coord = token.text.parse().map_err(|_| {
            ParseError::new(
                token.line,
                token.col,
                format!("expected {expected} (an integer), found {}", token.text),
            )
        })?;
        if value < 0 {
            return Err(ParseError::new(
                token.line,
                token.col,
                format!("{expected} must be non-negative, found {value}"),
            ));
        }
        Ok(value)
    }

    fn f64(&mut self, expected: &str) -> Result<f64, ParseError> {
        let token = self.number(expected)?;
        let value: f64 = token.text.parse().map_err(|_| {
            ParseError::new(
                token.line,
                token.col,
                format!("expected {expected} (a number), found {}", token.text),
            )
        })?;
        if !value.is_finite() {
            return Err(ParseError::new(
                token.line,
                token.col,
                format!("{expected} must be finite"),
            ));
        }
        Ok(value)
    }

    fn module_ref(&mut self, st: &State) -> Result<ModuleId, ParseError> {
        self.module_ref_expected(st, "module index")
    }

    fn module_ref_expected(&mut self, st: &State, expected: &str) -> Result<ModuleId, ParseError> {
        let token = self.number(expected)?;
        let index: usize = token.text.parse().map_err(|_| {
            ParseError::new(
                token.line,
                token.col,
                format!("expected {expected} (an integer), found {}", token.text),
            )
        })?;
        if index >= st.netlist.module_count() {
            return Err(ParseError::new(
                token.line,
                token.col,
                format!(
                    "module index {index} out of range ({} modules declared so far)",
                    st.netlist.module_count()
                ),
            ));
        }
        Ok(ModuleId::from_index(index))
    }

    /// Requires the whole line to be consumed.
    fn finish(&mut self) -> Result<(), ParseError> {
        match self.line.tokens.get(self.pos) {
            None => Ok(()),
            Some(extra) => Err(ParseError::new(
                extra.line,
                extra.col,
                format!("expected end of line, found {}", describe(extra)),
            )),
        }
    }
}

fn describe(token: &Token) -> String {
    match token.kind {
        TokenKind::Word => format!("'{}'", token.text),
        TokenKind::Number => token.text.clone(),
        TokenKind::Str => "a quoted string".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize_circuit;
    use apls_circuit::benchmarks;

    fn expect_err(text: &str) -> ParseError {
        parse_circuit(text).expect_err("must not parse")
    }

    #[test]
    fn all_bundled_circuits_round_trip() {
        for name in benchmarks::names() {
            let circuit = benchmarks::by_name(name).expect("bundled");
            let text = serialize_circuit(&circuit);
            let parsed = parse_circuit(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(parsed.name, circuit.name, "{name}");
            assert_eq!(parsed.netlist, circuit.netlist, "{name}");
            assert_eq!(parsed.hierarchy, circuit.hierarchy, "{name}");
            assert_eq!(parsed.constraints, circuit.constraints, "{name}");
            // canonical form is a serializer fixed point
            assert_eq!(serialize_circuit(&parsed), text, "{name}");
        }
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let circuit = benchmarks::miller_opamp_fig6();
        let text = serialize_circuit(&circuit);
        let noisy: String =
            text.lines().map(|l| format!("  {l}   # noise\n\n")).collect::<String>();
        let parsed = parse_circuit(&noisy).expect("noisy document parses");
        assert_eq!(parsed.netlist, circuit.netlist);
    }

    #[test]
    fn missing_header_is_positioned() {
        let err = expect_err("circuit \"x\"\n");
        assert_eq!((err.line, err.col), (1, 1));
        assert!(err.to_string().contains("expected 'apls'"));
    }

    #[test]
    fn bad_version_is_rejected() {
        let err = expect_err("apls 99\ncircuit \"x\"\n");
        assert!(err.message.contains("unsupported format version 99"));
    }

    #[test]
    fn dangling_net_pin_is_positioned() {
        let err = expect_err("apls 1\ncircuit \"x\"\nmodule \"a\" 10 10 rotate\nnet \"n\" 1 0 3\n");
        assert_eq!((err.line, err.col), (4, 13));
        assert!(err.message.contains("module index 3 out of range"));
    }

    #[test]
    fn non_dense_node_ids_are_rejected() {
        let err = expect_err("apls 1\ncircuit \"x\"\nmodule \"a\" 10 10 rotate\nnode 1 leaf 0\n");
        assert_eq!((err.line, err.col), (4, 6));
        assert!(err.message.contains("dense and ordered"));
    }

    #[test]
    fn missing_root_reports_at_eof() {
        let err = expect_err("apls 1\ncircuit \"x\"\nmodule \"a\" 10 10 rotate\nnode 0 leaf 0\n");
        assert_eq!(err.line, 4);
        assert!(err.message.contains("missing 'root'"));
    }

    #[test]
    fn uncovered_module_is_a_root_level_error() {
        let err = expect_err(
            "apls 1\ncircuit \"x\"\nmodule \"a\" 10 10 rotate\nmodule \"b\" 5 5 rotate\nnode 0 leaf 0\nroot 0\n",
        );
        assert_eq!((err.line, err.col), (6, 1));
        assert!(err.message.contains("not covered"));
    }

    #[test]
    fn trailing_garbage_is_positioned() {
        let err = expect_err("apls 1 extra\ncircuit \"x\"\n");
        assert_eq!((err.line, err.col), (1, 8));
        assert!(err.message.contains("expected end of line"));
    }

    #[test]
    fn minimal_circuit_parses() {
        let text = "apls 1\ncircuit \"one\"\nmodule \"m\" 10 20 norotate\nnode 0 leaf 0\nnode 1 group \"top\" none 0\nroot 1\n";
        let c = parse_circuit(text).expect("parses");
        assert_eq!(c.netlist.module_count(), 1);
        assert_eq!(c.hierarchy.node_count(), 2);
        assert!(!c.netlist.module(ModuleId::from_index(0)).rotation_allowed());
    }
}
