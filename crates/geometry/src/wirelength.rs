//! Half-perimeter wirelength (HPWL) estimation.

use crate::{BoundingBox, Coord, Point, Rect};

/// Half-perimeter wirelength of a set of pin locations.
///
/// HPWL is the standard placement-time net-length estimate: the half perimeter
/// of the bounding box of all pins on the net. Nets with fewer than two pins
/// contribute zero length.
///
/// # Example
///
/// ```
/// use apls_geometry::{hpwl_of_points, Point};
///
/// let pins = [Point::new(0, 0), Point::new(10, 5), Point::new(3, 8)];
/// assert_eq!(hpwl_of_points(pins), 10 + 8);
/// ```
#[must_use]
pub fn hpwl_of_points<I>(pins: I) -> Coord
where
    I: IntoIterator<Item = Point>,
{
    let mut count = 0usize;
    let mut bb = BoundingBox::new();
    for p in pins {
        bb.include_point(p);
        count += 1;
    }
    if count < 2 {
        0
    } else {
        bb.half_perimeter()
    }
}

/// Half-perimeter wirelength of a net whose pins sit at the centres of the
/// given module rectangles.
///
/// Centre coordinates are computed exactly using doubled coordinates, then the
/// doubled half-perimeter is halved with rounding toward zero (the error is at
/// most half a database unit per net, irrelevant at the scales involved).
///
/// # Example
///
/// ```
/// use apls_geometry::{hpwl, Rect};
///
/// let net = [Rect::new(0, 0, 10, 10), Rect::new(20, 0, 30, 10)];
/// assert_eq!(hpwl(&net), 20); // centres are (5,5) and (25,5)
/// ```
#[must_use]
pub fn hpwl(module_rects: &[Rect]) -> Coord {
    hpwl_filtered(module_rects.iter().copied().map(Some))
}

/// [`hpwl`] over the rectangles a lookup yields, skipping `None`s (unplaced
/// pins contribute nothing; fewer than two resolved pins give zero length).
///
/// This is the single HPWL kernel behind every wirelength evaluation in the
/// workspace — the annealing hot paths feed it placement slots or packed
/// B*-tree lookups directly, so all cost functions stay bit-identical by
/// construction.
///
/// # Example
///
/// ```
/// use apls_geometry::{hpwl_filtered, Rect};
///
/// let rects = [Some(Rect::new(0, 0, 10, 10)), None, Some(Rect::new(20, 0, 30, 10))];
/// assert_eq!(hpwl_filtered(rects), 20);
/// ```
#[must_use]
pub fn hpwl_filtered<I>(rects: I) -> Coord
where
    I: IntoIterator<Item = Option<Rect>>,
{
    let mut resolved = 0usize;
    let mut min_cx2 = Coord::MAX;
    let mut max_cx2 = Coord::MIN;
    let mut min_cy2 = Coord::MAX;
    let mut max_cy2 = Coord::MIN;
    for r in rects.into_iter().flatten() {
        let (cx2, cy2) = r.center_x2();
        min_cx2 = min_cx2.min(cx2);
        max_cx2 = max_cx2.max(cx2);
        min_cy2 = min_cy2.min(cy2);
        max_cy2 = max_cy2.max(cy2);
        resolved += 1;
    }
    if resolved < 2 {
        0
    } else {
        ((max_cx2 - min_cx2) + (max_cy2 - min_cy2)) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pin_nets_have_zero_length() {
        assert_eq!(hpwl_of_points([Point::new(4, 4)]), 0);
        assert_eq!(hpwl_of_points(std::iter::empty()), 0);
        assert_eq!(hpwl(&[Rect::new(0, 0, 5, 5)]), 0);
    }

    #[test]
    fn two_pin_net_is_manhattan_bbox() {
        assert_eq!(hpwl_of_points([Point::new(0, 0), Point::new(7, 3)]), 10);
    }

    #[test]
    fn interior_pins_do_not_change_hpwl() {
        let without = hpwl_of_points([Point::new(0, 0), Point::new(10, 10)]);
        let with = hpwl_of_points([Point::new(0, 0), Point::new(5, 5), Point::new(10, 10)]);
        assert_eq!(without, with);
    }

    #[test]
    fn rect_centre_hpwl() {
        let net = [
            Rect::new(0, 0, 10, 10),   // centre (5,5)
            Rect::new(20, 20, 40, 40), // centre (30,30)
        ];
        assert_eq!(hpwl(&net), 25 + 25);
    }

    #[test]
    fn translation_invariance() {
        let net = [Rect::new(0, 0, 4, 6), Rect::new(9, 2, 15, 8), Rect::new(3, 11, 5, 13)];
        let shifted: Vec<Rect> = net.iter().map(|r| r.translated(Point::new(100, -37))).collect();
        assert_eq!(hpwl(&net), hpwl(&shifted));
    }
}
