//! Horizontal contour (skyline) used by B*-tree packing.

use crate::{Coord, Rect};
use serde::{Deserialize, Serialize};

/// One horizontal segment of the contour: the skyline has height `y` over the
/// half-open interval `[x_start, x_end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContourSegment {
    /// Left end of the segment (inclusive).
    pub x_start: Coord,
    /// Right end of the segment (exclusive).
    pub x_end: Coord,
    /// Skyline height over the segment.
    pub y: Coord,
}

/// A horizontal contour ("skyline") data structure.
///
/// The contour records, for every x, the highest occupied y-coordinate so far.
/// B*-tree packing inserts modules left to right; each insertion queries the
/// maximum skyline height over the module's horizontal span and then raises the
/// skyline over that span to the module's top edge.
///
/// The classical implementation is a doubly-linked list; this one keeps a
/// sorted `Vec` of segments, which is simpler, cache-friendly and — at analog
/// module counts (tens to a few hundred) — at least as fast.
///
/// # Example
///
/// ```
/// use apls_geometry::Contour;
///
/// let mut c = Contour::new();
/// // place a 10x5 module at x = 0
/// let y0 = c.place(0, 10, 5);
/// assert_eq!(y0, 0);
/// // a 4x2 module at x = 3 lands on top of the first one
/// let y1 = c.place(3, 4, 2);
/// assert_eq!(y1, 5);
/// assert_eq!(c.max_height(), 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contour {
    segments: Vec<ContourSegment>,
}

impl Contour {
    /// Creates an empty contour (skyline at y = 0 everywhere).
    #[must_use]
    pub fn new() -> Self {
        Contour { segments: Vec::new() }
    }

    /// Resets the contour to the empty skyline, keeping the segment buffer
    /// allocated so repeated packings stop allocating once warmed up.
    pub fn clear(&mut self) {
        self.segments.clear();
    }

    /// Maximum skyline height over the half-open interval `[x_start, x_end)`.
    ///
    /// Intervals not covered by any placed module have height 0. The segments
    /// are sorted and disjoint, so the overlapping range is found by binary
    /// search.
    #[must_use]
    pub fn height_over(&self, x_start: Coord, x_end: Coord) -> Coord {
        debug_assert!(x_end >= x_start);
        let lo = self.segments.partition_point(|s| s.x_end <= x_start);
        let hi = self.segments.partition_point(|s| s.x_start < x_end);
        if lo >= hi {
            return 0;
        }
        self.segments[lo..hi].iter().map(|s| s.y).max().unwrap_or(0)
    }

    /// Places a module of width `w` and height `h` with its left edge at `x`,
    /// resting on the current skyline. Returns the y coordinate of the module's
    /// bottom edge and updates the skyline.
    pub fn place(&mut self, x: Coord, w: Coord, h: Coord) -> Coord {
        let y = self.height_over(x, x + w);
        self.raise(x, x + w, y + h);
        y
    }

    /// Raises the skyline to exactly `y` over `[x_start, x_end)`, replacing
    /// whatever was there (callers must ensure `y` is not lower than the
    /// existing skyline, which [`Contour::place`] guarantees).
    ///
    /// The update splices the affected segment range in place: at most the
    /// first and last overlapped segments survive as remainders, so the
    /// replacement is a bounded-size window and the segment buffer is never
    /// rebuilt (no allocation once its capacity has warmed up).
    fn raise(&mut self, x_start: Coord, x_end: Coord, y: Coord) {
        if x_start >= x_end {
            return;
        }
        // [lo, hi) = segments overlapping [x_start, x_end)
        let lo = self.segments.partition_point(|s| s.x_end <= x_start);
        let hi = self.segments.partition_point(|s| s.x_start < x_end);
        let new_seg = ContourSegment { x_start, x_end, y };
        let mut repl = [new_seg; 3];
        let mut repl_len = 0;
        if lo < hi && self.segments[lo].x_start < x_start {
            repl[repl_len] = ContourSegment {
                x_start: self.segments[lo].x_start,
                x_end: x_start,
                y: self.segments[lo].y,
            };
            repl_len += 1;
        }
        repl[repl_len] = new_seg;
        repl_len += 1;
        if lo < hi && self.segments[hi - 1].x_end > x_end {
            repl[repl_len] = ContourSegment {
                x_start: x_end,
                x_end: self.segments[hi - 1].x_end,
                y: self.segments[hi - 1].y,
            };
            repl_len += 1;
        }
        self.segments.splice(lo..hi, repl[..repl_len].iter().copied());
        // merge equal-height neighbours, which can only appear at the joints
        // of the spliced window (the rest of the contour was already merged)
        let mut i = lo.saturating_sub(1);
        let mut end = lo + repl_len;
        while i + 1 < self.segments.len() && i < end {
            if self.segments[i].x_end == self.segments[i + 1].x_start
                && self.segments[i].y == self.segments[i + 1].y
            {
                self.segments[i].x_end = self.segments[i + 1].x_end;
                self.segments.remove(i + 1);
                end -= 1;
            } else {
                i += 1;
            }
        }
    }

    /// Highest point of the skyline (0 for an empty contour).
    #[must_use]
    pub fn max_height(&self) -> Coord {
        self.segments.iter().map(|s| s.y).max().unwrap_or(0)
    }

    /// Rightmost extent of the skyline (0 for an empty contour).
    #[must_use]
    pub fn max_x(&self) -> Coord {
        self.segments.iter().map(|s| s.x_end).max().unwrap_or(0)
    }

    /// The contour segments, sorted by `x_start`.
    #[must_use]
    pub fn segments(&self) -> &[ContourSegment] {
        &self.segments
    }

    /// Bounding rectangle of everything placed so far (anchored at the origin).
    #[must_use]
    pub fn bounding_rect(&self) -> Rect {
        Rect::new(0, 0, self.max_x(), self.max_height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_contour_has_zero_height() {
        let c = Contour::new();
        assert_eq!(c.height_over(0, 100), 0);
        assert_eq!(c.max_height(), 0);
        assert_eq!(c.max_x(), 0);
    }

    #[test]
    fn single_placement() {
        let mut c = Contour::new();
        assert_eq!(c.place(0, 10, 5), 0);
        assert_eq!(c.max_height(), 5);
        assert_eq!(c.max_x(), 10);
        assert_eq!(c.height_over(0, 10), 5);
        assert_eq!(c.height_over(10, 20), 0);
    }

    #[test]
    fn stacking_and_adjacent_placement() {
        let mut c = Contour::new();
        c.place(0, 10, 5);
        // adjacent to the right: sits on the floor
        assert_eq!(c.place(10, 10, 3), 0);
        // overlapping both: sits on the max of the two
        assert_eq!(c.place(5, 10, 2), 5);
        assert_eq!(c.max_height(), 7);
    }

    #[test]
    fn partial_overlap_splits_segments() {
        let mut c = Contour::new();
        c.place(0, 20, 4);
        c.place(5, 5, 6); // raises [5,10) to 10
        assert_eq!(c.height_over(0, 5), 4);
        assert_eq!(c.height_over(5, 10), 10);
        assert_eq!(c.height_over(10, 20), 4);
        // segments must be sorted and non-overlapping
        let segs = c.segments();
        for w in segs.windows(2) {
            assert!(w[0].x_end <= w[1].x_start);
        }
    }

    #[test]
    fn merge_equal_height_neighbours() {
        let mut c = Contour::new();
        c.place(0, 5, 3);
        c.place(5, 5, 3);
        assert_eq!(c.segments().len(), 1);
        assert_eq!(c.segments()[0], ContourSegment { x_start: 0, x_end: 10, y: 3 });
    }

    #[test]
    fn clear_resets_to_empty_skyline() {
        let mut c = Contour::new();
        c.place(0, 10, 5);
        c.place(5, 10, 5);
        c.clear();
        assert_eq!(c.segments().len(), 0);
        assert_eq!(c.height_over(0, 100), 0);
        assert_eq!(c.place(0, 4, 4), 0);
    }

    #[test]
    fn raise_to_equal_height_merges_across_the_joint() {
        let mut c = Contour::new();
        c.place(0, 5, 3);
        // zero-height placement on an adjacent span lands at y = 0 and raises
        // to 0 + 3 == 3 via a second module of height 3
        c.place(5, 5, 3);
        c.place(10, 5, 3);
        assert_eq!(c.segments().len(), 1);
        assert_eq!(c.segments()[0], ContourSegment { x_start: 0, x_end: 15, y: 3 });
    }

    #[test]
    fn bounding_rect_matches_extents() {
        let mut c = Contour::new();
        c.place(0, 7, 2);
        c.place(7, 3, 9);
        assert_eq!(c.bounding_rect(), Rect::new(0, 0, 10, 9));
    }
}
