//! Width/height dimension pairs.

use crate::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A width/height pair describing the footprint of a module or placement.
///
/// Dimensions are always non-negative; constructors debug-assert this.
///
/// # Example
///
/// ```
/// use apls_geometry::Dims;
///
/// let d = Dims::new(30, 20);
/// assert_eq!(d.area(), 600);
/// assert_eq!(d.rotated(), Dims::new(20, 30));
/// assert!((d.aspect_ratio() - 1.5).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dims {
    /// Horizontal extent.
    pub w: Coord,
    /// Vertical extent.
    pub h: Coord,
}

impl Dims {
    /// Creates a dimension pair.
    ///
    /// # Panics
    ///
    /// Debug-panics if either extent is negative.
    #[must_use]
    pub fn new(w: Coord, h: Coord) -> Self {
        debug_assert!(w >= 0 && h >= 0, "dimensions must be non-negative");
        Dims { w, h }
    }

    /// A zero-sized footprint.
    pub const ZERO: Dims = Dims { w: 0, h: 0 };

    /// Area of the footprint.
    #[must_use]
    pub fn area(self) -> i128 {
        i128::from(self.w) * i128::from(self.h)
    }

    /// The footprint with width and height exchanged (a 90° rotation).
    #[must_use]
    pub fn rotated(self) -> Dims {
        Dims { w: self.h, h: self.w }
    }

    /// Width divided by height.
    ///
    /// Returns `f64::INFINITY` for zero-height footprints.
    #[must_use]
    pub fn aspect_ratio(self) -> f64 {
        if self.h == 0 {
            f64::INFINITY
        } else {
            self.w as f64 / self.h as f64
        }
    }

    /// Half-perimeter of the footprint (`w + h`).
    #[must_use]
    pub fn half_perimeter(self) -> Coord {
        self.w + self.h
    }

    /// Returns `true` when this footprint fits inside `other` without rotation.
    #[must_use]
    pub fn fits_in(self, other: Dims) -> bool {
        self.w <= other.w && self.h <= other.h
    }

    /// Returns `true` when this footprint *dominates* `other`: it is at least
    /// as wide and at least as tall.
    ///
    /// A dominated shape is redundant inside a shape function because any
    /// placement achievable with the dominating shape could use the dominated
    /// one at no cost.
    #[must_use]
    pub fn dominates(self, other: Dims) -> bool {
        self.w >= other.w && self.h >= other.h
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

impl From<(Coord, Coord)> for Dims {
    fn from((w, h): (Coord, Coord)) -> Self {
        Dims::new(w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_half_perimeter() {
        let d = Dims::new(7, 9);
        assert_eq!(d.area(), 63);
        assert_eq!(d.half_perimeter(), 16);
        assert_eq!(Dims::ZERO.area(), 0);
    }

    #[test]
    fn rotation_is_involution() {
        let d = Dims::new(3, 8);
        assert_eq!(d.rotated().rotated(), d);
        assert_eq!(d.rotated().area(), d.area());
    }

    #[test]
    fn aspect_ratio_handles_zero_height() {
        assert!(Dims::new(10, 0).aspect_ratio().is_infinite());
        assert!((Dims::new(10, 4).aspect_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fits_and_dominates() {
        let small = Dims::new(2, 3);
        let big = Dims::new(4, 3);
        assert!(small.fits_in(big));
        assert!(!big.fits_in(small));
        assert!(big.dominates(small));
        assert!(big.dominates(big));
        assert!(!small.dominates(big));
    }

    #[test]
    fn display_format() {
        assert_eq!(Dims::new(12, 5).to_string(), "12x5");
    }

    #[test]
    fn area_does_not_overflow_for_large_dims() {
        let d = Dims::new(i64::MAX / 4, 8);
        assert_eq!(d.area(), i128::from(i64::MAX / 4) * 8);
    }
}
