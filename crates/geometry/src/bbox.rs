//! Incremental bounding-box accumulation.

use crate::{Coord, Point, Rect};
use serde::{Deserialize, Serialize};

/// An incrementally built axis-aligned bounding box.
///
/// Unlike [`Rect`], a `BoundingBox` can be empty; accumulating points or
/// rectangles grows it. It is the natural accumulator for chip outlines and
/// per-net pin extents.
///
/// # Example
///
/// ```
/// use apls_geometry::{BoundingBox, Point, Rect};
///
/// let mut bb = BoundingBox::new();
/// assert!(bb.is_empty());
/// bb.include_point(Point::new(3, 4));
/// bb.include_rect(&Rect::new(0, 0, 2, 2));
/// let r = bb.to_rect().unwrap();
/// assert_eq!(r, Rect::new(0, 0, 3, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BoundingBox {
    extents: Option<Rect>,
}

impl BoundingBox {
    /// Creates an empty bounding box.
    #[must_use]
    pub fn new() -> Self {
        BoundingBox { extents: None }
    }

    /// Returns `true` when nothing has been accumulated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.extents.is_none()
    }

    /// Grows the box to include a point.
    pub fn include_point(&mut self, p: Point) {
        let r = Rect::new(p.x, p.y, p.x, p.y);
        self.include_rect(&r);
    }

    /// Grows the box to include a rectangle.
    pub fn include_rect(&mut self, r: &Rect) {
        self.extents = Some(match self.extents {
            None => *r,
            Some(cur) => cur.union(r),
        });
    }

    /// The accumulated extents, or `None` when empty.
    #[must_use]
    pub fn to_rect(&self) -> Option<Rect> {
        self.extents
    }

    /// Width of the accumulated extents (0 when empty).
    #[must_use]
    pub fn width(&self) -> Coord {
        self.extents.map_or(0, |r| r.width())
    }

    /// Height of the accumulated extents (0 when empty).
    #[must_use]
    pub fn height(&self) -> Coord {
        self.extents.map_or(0, |r| r.height())
    }

    /// Area of the accumulated extents (0 when empty).
    #[must_use]
    pub fn area(&self) -> i128 {
        self.extents.map_or(0, |r| r.area())
    }

    /// Half-perimeter of the accumulated extents (0 when empty).
    ///
    /// Summed over all nets, this is the standard HPWL wirelength metric.
    #[must_use]
    pub fn half_perimeter(&self) -> Coord {
        self.extents.map_or(0, |r| r.width() + r.height())
    }
}

impl FromIterator<Point> for BoundingBox {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        let mut bb = BoundingBox::new();
        for p in iter {
            bb.include_point(p);
        }
        bb
    }
}

impl FromIterator<Rect> for BoundingBox {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Self {
        let mut bb = BoundingBox::new();
        for r in iter {
            bb.include_rect(&r);
        }
        bb
    }
}

impl Extend<Point> for BoundingBox {
    fn extend<T: IntoIterator<Item = Point>>(&mut self, iter: T) {
        for p in iter {
            self.include_point(p);
        }
    }
}

impl Extend<Rect> for BoundingBox {
    fn extend<T: IntoIterator<Item = Rect>>(&mut self, iter: T) {
        for r in iter {
            self.include_rect(&r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_reports_zero_metrics() {
        let bb = BoundingBox::new();
        assert!(bb.is_empty());
        assert_eq!(bb.width(), 0);
        assert_eq!(bb.height(), 0);
        assert_eq!(bb.area(), 0);
        assert_eq!(bb.half_perimeter(), 0);
        assert_eq!(bb.to_rect(), None);
    }

    #[test]
    fn single_point_box_is_degenerate() {
        let bb: BoundingBox = [Point::new(5, 7)].into_iter().collect();
        assert!(!bb.is_empty());
        assert_eq!(bb.area(), 0);
        assert_eq!(bb.to_rect(), Some(Rect::new(5, 7, 5, 7)));
    }

    #[test]
    fn accumulation_order_does_not_matter() {
        let pts = [Point::new(0, 0), Point::new(10, -5), Point::new(-3, 8)];
        let forward: BoundingBox = pts.into_iter().collect();
        let backward: BoundingBox = pts.into_iter().rev().collect();
        assert_eq!(forward, backward);
        assert_eq!(forward.to_rect(), Some(Rect::new(-3, -5, 10, 8)));
    }

    #[test]
    fn rect_accumulation() {
        let rects = [Rect::new(0, 0, 4, 4), Rect::new(10, 2, 12, 3)];
        let bb: BoundingBox = rects.into_iter().collect();
        assert_eq!(bb.width(), 12);
        assert_eq!(bb.height(), 4);
        assert_eq!(bb.half_perimeter(), 16);
    }

    #[test]
    fn extend_matches_from_iterator() {
        let pts = [Point::new(1, 1), Point::new(9, 9)];
        let mut a = BoundingBox::new();
        a.extend(pts);
        let b: BoundingBox = pts.into_iter().collect();
        assert_eq!(a, b);
    }
}
