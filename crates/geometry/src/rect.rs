//! Axis-aligned rectangles and overlap utilities.

use crate::{Coord, Dims, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle described by its lower-left and upper-right
/// corners (half-open in neither direction; the rectangle is the closed set
/// `[x_min, x_max] x [y_min, y_max]`, but overlap tests treat shared edges as
/// *not* overlapping, which is the convention used by placement legality
/// checks).
///
/// # Example
///
/// ```
/// use apls_geometry::{Rect, Point, Dims};
///
/// let r = Rect::from_dims(Point::new(2, 3), Dims::new(10, 4));
/// assert_eq!(r.width(), 10);
/// assert_eq!(r.height(), 4);
/// assert_eq!(r.center_x2(), (2 * 2 + 10, 2 * 3 + 4));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Rect {
    /// Lower-left x.
    pub x_min: Coord,
    /// Lower-left y.
    pub y_min: Coord,
    /// Upper-right x.
    pub x_max: Coord,
    /// Upper-right y.
    pub y_max: Coord,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Debug-panics if `x_max < x_min` or `y_max < y_min`.
    #[must_use]
    pub fn new(x_min: Coord, y_min: Coord, x_max: Coord, y_max: Coord) -> Self {
        debug_assert!(x_max >= x_min && y_max >= y_min, "degenerate rectangle");
        Rect { x_min, y_min, x_max, y_max }
    }

    /// Creates a rectangle from its lower-left corner and a footprint.
    #[must_use]
    pub fn from_dims(origin: Point, dims: Dims) -> Self {
        Rect::new(origin.x, origin.y, origin.x + dims.w, origin.y + dims.h)
    }

    /// Width of the rectangle.
    #[must_use]
    pub fn width(&self) -> Coord {
        self.x_max - self.x_min
    }

    /// Height of the rectangle.
    #[must_use]
    pub fn height(&self) -> Coord {
        self.y_max - self.y_min
    }

    /// Footprint of the rectangle.
    #[must_use]
    pub fn dims(&self) -> Dims {
        Dims::new(self.width(), self.height())
    }

    /// Area of the rectangle.
    #[must_use]
    pub fn area(&self) -> i128 {
        self.dims().area()
    }

    /// Lower-left corner.
    #[must_use]
    pub fn origin(&self) -> Point {
        Point::new(self.x_min, self.y_min)
    }

    /// Twice the centre coordinates, `(2*cx, 2*cy)`.
    ///
    /// Returning doubled values keeps the result exact in integer arithmetic;
    /// symmetry checks compare doubled centres so that half-unit centres never
    /// round.
    #[must_use]
    pub fn center_x2(&self) -> (Coord, Coord) {
        (self.x_min + self.x_max, self.y_min + self.y_max)
    }

    /// Returns the rectangle translated by `delta`.
    #[must_use]
    pub fn translated(&self, delta: Point) -> Rect {
        Rect::new(
            self.x_min + delta.x,
            self.y_min + delta.y,
            self.x_max + delta.x,
            self.y_max + delta.y,
        )
    }

    /// Returns `true` when the two rectangles share interior area.
    ///
    /// Rectangles that merely touch along an edge or at a corner do **not**
    /// overlap.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x_min < other.x_max
            && other.x_min < self.x_max
            && self.y_min < other.y_max
            && other.y_min < self.y_max
    }

    /// Returns `true` when `other` lies entirely inside `self` (boundaries may
    /// touch).
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x_min <= other.x_min
            && self.y_min <= other.y_min
            && self.x_max >= other.x_max
            && self.y_max >= other.y_max
    }

    /// Returns `true` when the point lies inside or on the boundary.
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x_min && p.x <= self.x_max && p.y >= self.y_min && p.y <= self.y_max
    }

    /// Smallest rectangle containing both rectangles.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.x_min.min(other.x_min),
            self.y_min.min(other.y_min),
            self.x_max.max(other.x_max),
            self.y_max.max(other.y_max),
        )
    }

    /// Intersection of the two rectangles, or `None` when they share no
    /// interior area.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect::new(
            self.x_min.max(other.x_min),
            self.y_min.max(other.y_min),
            self.x_max.min(other.x_max),
            self.y_max.min(other.y_max),
        ))
    }

    /// Mirrors the rectangle about a vertical axis located at `2 * axis_x2 / 2`
    /// (the argument is the *doubled* axis coordinate, so axes may fall between
    /// database units without rounding).
    #[must_use]
    pub fn mirror_about_vertical_x2(&self, axis_x2: Coord) -> Rect {
        let new_x_min = axis_x2 - self.x_max;
        let new_x_max = axis_x2 - self.x_min;
        Rect::new(new_x_min, self.y_min, new_x_max, self.y_max)
    }

    /// Mirrors the rectangle about a horizontal axis located at the doubled
    /// coordinate `axis_y2`.
    #[must_use]
    pub fn mirror_about_horizontal_x2(&self, axis_y2: Coord) -> Rect {
        let new_y_min = axis_y2 - self.y_max;
        let new_y_max = axis_y2 - self.y_min;
        Rect::new(self.x_min, new_y_min, self.x_max, new_y_max)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.x_min, self.x_max, self.y_min, self.y_max)
    }
}

/// Overlap area between two rectangles (zero when they do not overlap).
///
/// # Example
///
/// ```
/// use apls_geometry::{Rect, overlap_area};
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(5, 5, 15, 15);
/// assert_eq!(overlap_area(&a, &b), 25);
/// ```
#[must_use]
pub fn overlap_area(a: &Rect, b: &Rect) -> i128 {
    a.intersection(b).map_or(0, |r| r.area())
}

/// Sum of pairwise overlap areas in a collection of rectangles.
///
/// This is the legality metric used by tests: a legal placement has a total
/// overlap of zero. The implementation is the straightforward O(n²) pairwise
/// scan, which is fine for the module counts in analog placement (≤ a few
/// hundred).
#[must_use]
pub fn total_overlap_area(rects: &[Rect]) -> i128 {
    let mut total = 0;
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            total += overlap_area(&rects[i], &rects[j]);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = Rect::from_dims(Point::new(1, 2), Dims::new(3, 4));
        assert_eq!(r, Rect::new(1, 2, 4, 6));
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 12);
        assert_eq!(r.origin(), Point::new(1, 2));
        assert_eq!(r.dims(), Dims::new(3, 4));
    }

    #[test]
    fn touching_rectangles_do_not_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(&b));
        assert_eq!(overlap_area(&a, &b), 0);
    }

    #[test]
    fn overlapping_rectangles() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(9, 9, 20, 20);
        assert!(a.overlaps(&b));
        assert_eq!(overlap_area(&a, &b), 1);
        assert_eq!(a.intersection(&b), Some(Rect::new(9, 9, 10, 10)));
    }

    #[test]
    fn union_contains_both() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(10, -2, 12, 3);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0, -2, 12, 5));
    }

    #[test]
    fn contains_point_includes_boundary() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains_point(Point::new(0, 0)));
        assert!(r.contains_point(Point::new(4, 4)));
        assert!(!r.contains_point(Point::new(5, 2)));
    }

    #[test]
    fn translation_preserves_dims() {
        let r = Rect::new(0, 0, 7, 3);
        let t = r.translated(Point::new(5, -2));
        assert_eq!(t.dims(), r.dims());
        assert_eq!(t.origin(), Point::new(5, -2));
    }

    #[test]
    fn vertical_mirror_is_involution_and_preserves_dims() {
        let r = Rect::new(2, 1, 6, 9);
        let axis_x2 = 15; // axis at x = 7.5
        let m = r.mirror_about_vertical_x2(axis_x2);
        assert_eq!(m.dims(), r.dims());
        assert_eq!(m.mirror_about_vertical_x2(axis_x2), r);
        // centres must be mirror images: cx + cx' == axis_x2
        assert_eq!(r.center_x2().0 + m.center_x2().0, 2 * axis_x2);
    }

    #[test]
    fn horizontal_mirror_is_involution() {
        let r = Rect::new(2, 1, 6, 9);
        let m = r.mirror_about_horizontal_x2(8);
        assert_eq!(m.mirror_about_horizontal_x2(8), r);
        assert_eq!(r.center_x2().1 + m.center_x2().1, 2 * 8);
    }

    #[test]
    fn total_overlap_of_disjoint_set_is_zero() {
        let rects =
            vec![Rect::new(0, 0, 10, 10), Rect::new(10, 0, 20, 10), Rect::new(0, 10, 20, 20)];
        assert_eq!(total_overlap_area(&rects), 0);
    }

    #[test]
    fn total_overlap_counts_every_pair() {
        let rects = vec![Rect::new(0, 0, 10, 10), Rect::new(5, 0, 15, 10), Rect::new(8, 0, 18, 10)];
        // pairs: (0,1) 5*10=50, (0,2) 2*10=20, (1,2) 7*10=70
        assert_eq!(total_overlap_area(&rects), 140);
    }
}
