//! Two-dimensional integer points.

use crate::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point in the layout plane, in database units.
///
/// # Example
///
/// ```
/// use apls_geometry::Point;
///
/// let p = Point::new(3, 4) + Point::new(1, 1);
/// assert_eq!(p, Point::new(4, 5));
/// assert_eq!(p.manhattan_distance(Point::ORIGIN), 9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to another point.
    ///
    /// # Example
    ///
    /// ```
    /// use apls_geometry::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    #[must_use]
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Mirrors the point about a vertical line at `axis_x`.
    ///
    /// The mirror of `x` is `2 * axis_x - x`; the y coordinate is unchanged.
    #[must_use]
    pub fn mirror_about_vertical(self, axis_x: Coord) -> Point {
        Point::new(2 * axis_x - self.x, self.y)
    }

    /// Mirrors the point about a horizontal line at `axis_y`.
    #[must_use]
    pub fn mirror_about_horizontal(self, axis_y: Coord) -> Point {
        Point::new(self.x, 2 * axis_y - self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_zero() {
        assert_eq!(Point::ORIGIN, Point::new(0, 0));
        assert_eq!(Point::default(), Point::ORIGIN);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Point::new(5, -3);
        let b = Point::new(-2, 7);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(10, 20);
        let b = Point::new(-5, 3);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn mirror_about_vertical_is_involution() {
        let p = Point::new(7, 11);
        assert_eq!(p.mirror_about_vertical(10), Point::new(13, 11));
        assert_eq!(p.mirror_about_vertical(10).mirror_about_vertical(10), p);
    }

    #[test]
    fn mirror_about_horizontal_is_involution() {
        let p = Point::new(7, 11);
        assert_eq!(p.mirror_about_horizontal(0), Point::new(7, -11));
        assert_eq!(p.mirror_about_horizontal(4).mirror_about_horizontal(4), p);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (3, 9).into();
        assert_eq!(p, Point::new(3, 9));
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
    }
}
