//! Geometry substrate for analog layout synthesis.
//!
//! This crate provides the primitive geometric vocabulary shared by every
//! placement engine in the workspace:
//!
//! * [`Point`], [`Rect`] and [`Dims`] — integer (database-unit) coordinates,
//!   sizes and axis-aligned rectangles;
//! * [`Orientation`] — the eight layout orientations (rotations and mirrors);
//! * [`Contour`] — the horizontal skyline used by B*-tree packing;
//! * [`BoundingBox`] — incremental bounding-box accumulation;
//! * [`hpwl`] — half-perimeter wirelength of pin sets;
//! * [`overlap`] utilities for placement legality checking.
//!
//! All coordinates are `i64` database units (dbu). Using integers keeps every
//! packing algorithm exact and hashable, which matters for the enumeration and
//! shape-function code in the rest of the workspace.
//!
//! # Example
//!
//! ```
//! use apls_geometry::{Rect, Dims, Point};
//!
//! let a = Rect::from_dims(Point::new(0, 0), Dims::new(10, 20));
//! let b = Rect::from_dims(Point::new(10, 0), Dims::new(5, 5));
//! assert!(!a.overlaps(&b));
//! assert_eq!(a.union(&b).width(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod contour;
mod dims;
mod orientation;
mod point;
mod rect;
mod wirelength;

pub use bbox::BoundingBox;
pub use contour::{Contour, ContourSegment};
pub use dims::Dims;
pub use orientation::Orientation;
pub use point::Point;
pub use rect::{overlap_area, total_overlap_area, Rect};
pub use wirelength::{hpwl, hpwl_filtered, hpwl_of_points};

/// Database-unit coordinate type used throughout the workspace.
///
/// 1 dbu is interpreted as 1 nanometre by the higher-level crates, but nothing
/// in this crate depends on that interpretation.
pub type Coord = i64;
