//! Layout orientations.

use crate::Dims;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the eight axis-aligned layout orientations.
///
/// The names follow the usual EDA convention: `R0`/`R90`/`R180`/`R270` are
/// counter-clockwise rotations, `MX`/`MY` mirror about the X/Y axis, and
/// `MX90`/`MY90` are mirrors followed by a 90° rotation.
///
/// For the rectangle-packing algorithms in this workspace only the footprint
/// matters, so [`Orientation::apply_to_dims`] collapses the eight orientations
/// to "swapped" or "not swapped" width/height.
///
/// # Example
///
/// ```
/// use apls_geometry::{Orientation, Dims};
///
/// let d = Dims::new(10, 4);
/// assert_eq!(Orientation::R90.apply_to_dims(d), Dims::new(4, 10));
/// assert_eq!(Orientation::MX.apply_to_dims(d), d);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise rotation.
    R90,
    /// 180° rotation.
    R180,
    /// 270° counter-clockwise rotation.
    R270,
    /// Mirror about the X axis (flip vertically).
    MX,
    /// Mirror about the Y axis (flip horizontally).
    MY,
    /// Mirror about X, then rotate 90°.
    MX90,
    /// Mirror about Y, then rotate 90°.
    MY90,
}

impl Orientation {
    /// All eight orientations, in a fixed order.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MX,
        Orientation::MY,
        Orientation::MX90,
        Orientation::MY90,
    ];

    /// Returns `true` when the orientation exchanges width and height.
    #[must_use]
    pub fn swaps_dims(self) -> bool {
        matches!(self, Orientation::R90 | Orientation::R270 | Orientation::MX90 | Orientation::MY90)
    }

    /// Footprint of a module with base dimensions `dims` placed in this
    /// orientation.
    #[must_use]
    pub fn apply_to_dims(self, dims: Dims) -> Dims {
        if self.swaps_dims() {
            dims.rotated()
        } else {
            dims
        }
    }

    /// The orientation obtained by rotating a further 90° counter-clockwise.
    #[must_use]
    pub fn rotated_90(self) -> Orientation {
        match self {
            Orientation::R0 => Orientation::R90,
            Orientation::R90 => Orientation::R180,
            Orientation::R180 => Orientation::R270,
            Orientation::R270 => Orientation::R0,
            Orientation::MX => Orientation::MX90,
            Orientation::MX90 => Orientation::MY,
            Orientation::MY => Orientation::MY90,
            Orientation::MY90 => Orientation::MX,
        }
    }

    /// The orientation obtained by mirroring about the Y axis afterwards.
    ///
    /// Symmetric device pairs are conventionally placed in orientations that
    /// are Y-mirrors of each other so that their internal geometry matches
    /// when reflected about the symmetry axis.
    #[must_use]
    pub fn mirrored_y(self) -> Orientation {
        match self {
            Orientation::R0 => Orientation::MY,
            Orientation::MY => Orientation::R0,
            Orientation::R180 => Orientation::MX,
            Orientation::MX => Orientation::R180,
            Orientation::R90 => Orientation::MX90,
            Orientation::MX90 => Orientation::R90,
            Orientation::R270 => Orientation::MY90,
            Orientation::MY90 => Orientation::R270,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::MX => "MX",
            Orientation::MY => "MY",
            Orientation::MX90 => "MX90",
            Orientation::MY90 => "MY90",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_r0() {
        assert_eq!(Orientation::default(), Orientation::R0);
    }

    #[test]
    fn exactly_four_orientations_swap_dims() {
        let swapping = Orientation::ALL.iter().filter(|o| o.swaps_dims()).count();
        assert_eq!(swapping, 4);
    }

    #[test]
    fn rotation_cycles_within_rotation_or_mirror_class() {
        for &o in &Orientation::ALL {
            let back = o.rotated_90().rotated_90().rotated_90().rotated_90();
            assert_eq!(back, o, "four 90° rotations must be identity for {o}");
        }
    }

    #[test]
    fn mirror_y_is_involution() {
        for &o in &Orientation::ALL {
            assert_eq!(o.mirrored_y().mirrored_y(), o);
        }
    }

    #[test]
    fn apply_to_dims_matches_swap_flag() {
        let d = Dims::new(6, 2);
        for &o in &Orientation::ALL {
            let out = o.apply_to_dims(d);
            if o.swaps_dims() {
                assert_eq!(out, d.rotated());
            } else {
                assert_eq!(out, d);
            }
        }
    }

    #[test]
    fn display_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<String> = Orientation::ALL.iter().map(|o| o.to_string()).collect();
        assert_eq!(names.len(), Orientation::ALL.len());
    }
}
