//! Property-based tests for the geometry substrate.

use apls_geometry::{
    hpwl, overlap_area, total_overlap_area, BoundingBox, Contour, Dims, Orientation, Point, Rect,
};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-1000i64..1000, -1000i64..1000, 1i64..500, 1i64..500)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-10_000i64..10_000, -10_000i64..10_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn overlap_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(overlap_area(&a, &b), overlap_area(&b, &a));
    }

    #[test]
    fn overlap_area_bounded_by_each_area(a in arb_rect(), b in arb_rect()) {
        let o = overlap_area(&a, &b);
        prop_assert!(o >= 0);
        prop_assert!(o <= a.area());
        prop_assert!(o <= b.area());
    }

    #[test]
    fn union_contains_both_operands(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert_eq!(i.area(), overlap_area(&a, &b));
        }
    }

    #[test]
    fn rect_self_overlap_equals_area(a in arb_rect()) {
        prop_assert_eq!(overlap_area(&a, &a), a.area());
    }

    #[test]
    fn mirror_preserves_dims_and_is_involution(a in arb_rect(), axis in -2000i64..2000) {
        let m = a.mirror_about_vertical_x2(axis);
        prop_assert_eq!(m.dims(), a.dims());
        prop_assert_eq!(m.mirror_about_vertical_x2(axis), a);
    }

    #[test]
    fn translation_preserves_overlap(a in arb_rect(), b in arb_rect(), d in arb_point()) {
        let at = a.translated(d);
        let bt = b.translated(d);
        prop_assert_eq!(overlap_area(&a, &b), overlap_area(&at, &bt));
    }

    #[test]
    fn hpwl_is_translation_invariant(rects in proptest::collection::vec(arb_rect(), 2..8), d in arb_point()) {
        let shifted: Vec<Rect> = rects.iter().map(|r| r.translated(d)).collect();
        prop_assert_eq!(hpwl(&rects), hpwl(&shifted));
    }

    #[test]
    fn hpwl_is_non_negative(rects in proptest::collection::vec(arb_rect(), 0..8)) {
        prop_assert!(hpwl(&rects) >= 0);
    }

    #[test]
    fn bounding_box_contains_all_inputs(rects in proptest::collection::vec(arb_rect(), 1..10)) {
        let bb: BoundingBox = rects.iter().copied().collect();
        let outer = bb.to_rect().unwrap();
        for r in &rects {
            prop_assert!(outer.contains_rect(r));
        }
    }

    #[test]
    fn orientation_preserves_area(w in 1i64..1000, h in 1i64..1000) {
        let d = Dims::new(w, h);
        for &o in &Orientation::ALL {
            prop_assert_eq!(o.apply_to_dims(d).area(), d.area());
        }
    }

    #[test]
    fn contour_placements_never_overlap(
        widths in proptest::collection::vec((1i64..60, 1i64..60), 1..25),
    ) {
        // Place modules left-edge-first at pseudo-random x positions derived
        // from their index; the contour must always yield a non-overlapping
        // stack.
        let mut contour = Contour::new();
        let mut rects = Vec::new();
        let mut x = 0i64;
        for (i, &(w, h)) in widths.iter().enumerate() {
            // alternate between stacking at the same x and moving right
            if i % 3 == 0 {
                x = (i as i64 * 7) % 100;
            }
            let y = contour.place(x, w, h);
            rects.push(Rect::new(x, y, x + w, y + h));
        }
        prop_assert_eq!(total_overlap_area(&rects), 0);
    }

    /// The in-place splicing `raise` must produce exactly the canonical
    /// (sorted, disjoint, merged) segment list of the naive rebuild-the-Vec
    /// reference implementation, for any placement sequence.
    #[test]
    fn contour_matches_naive_reference(
        moves in proptest::collection::vec((0i64..120, 1i64..50, 0i64..40), 1..30),
    ) {
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct Seg { x_start: i64, x_end: i64, y: i64 }
        let mut reference: Vec<Seg> = Vec::new();
        let mut contour = Contour::new();
        for &(x, w, h) in &moves {
            // reference: query then rebuild (the pre-hot-path algorithm)
            let (x_start, x_end) = (x, x + w);
            let top = reference
                .iter()
                .filter(|s| s.x_start < x_end && x_start < s.x_end)
                .map(|s| s.y)
                .max()
                .unwrap_or(0);
            let y = top + h;
            let mut next: Vec<Seg> = Vec::new();
            for &seg in &reference {
                if seg.x_end <= x_start || seg.x_start >= x_end {
                    next.push(seg);
                    continue;
                }
                if seg.x_start < x_start {
                    next.push(Seg { x_start: seg.x_start, x_end: x_start, y: seg.y });
                }
                if seg.x_end > x_end {
                    next.push(Seg { x_start: x_end, x_end: seg.x_end, y: seg.y });
                }
            }
            next.push(Seg { x_start, x_end, y });
            next.sort_by_key(|s| s.x_start);
            reference.clear();
            for seg in next {
                if let Some(last) = reference.last_mut() {
                    if last.x_end == seg.x_start && last.y == seg.y {
                        last.x_end = seg.x_end;
                        continue;
                    }
                }
                reference.push(seg);
            }

            let placed_y = contour.place(x, w, h);
            prop_assert_eq!(placed_y, top);
            let got: Vec<Seg> = contour
                .segments()
                .iter()
                .map(|s| Seg { x_start: s.x_start, x_end: s.x_end, y: s.y })
                .collect();
            prop_assert_eq!(&got, &reference);
        }
    }

    #[test]
    fn contour_height_is_monotone_in_placements(
        widths in proptest::collection::vec((1i64..40, 1i64..40), 1..20),
    ) {
        let mut contour = Contour::new();
        let mut prev_height = 0;
        for &(w, h) in &widths {
            contour.place(0, w, h);
            let height = contour.max_height();
            prop_assert!(height >= prev_height);
            prop_assert!(height >= h);
            prev_height = height;
        }
    }
}
