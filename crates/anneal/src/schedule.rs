//! Cooling schedules.

/// A geometric cooling schedule.
///
/// The temperature starts at `t_start`, is multiplied by `alpha` after every
/// temperature step, and the run terminates once it drops below `t_end` (or
/// when the optional move budget is exhausted). `moves_per_step` proposals are
/// evaluated at every temperature.
///
/// # Example
///
/// ```
/// use apls_anneal::Schedule;
///
/// let s = Schedule::geometric(100.0, 0.1, 0.95, 200);
/// assert!(s.step_count() > 100);
/// assert_eq!(s.moves_per_step(), 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    t_start: f64,
    t_end: f64,
    alpha: f64,
    moves_per_step: usize,
    max_moves: Option<u64>,
}

impl Schedule {
    /// Creates a geometric schedule.
    ///
    /// # Panics
    ///
    /// Panics if the temperatures are not positive, `t_end > t_start`, or
    /// `alpha` is not in `(0, 1)`.
    #[must_use]
    pub fn geometric(t_start: f64, t_end: f64, alpha: f64, moves_per_step: usize) -> Self {
        assert!(t_start > 0.0 && t_end > 0.0, "temperatures must be positive");
        assert!(t_end <= t_start, "end temperature must not exceed start temperature");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(moves_per_step > 0, "at least one move per step is required");
        Schedule { t_start, t_end, alpha, moves_per_step, max_moves: None }
    }

    /// A quick default schedule scaled to the problem size `n` (number of
    /// modules): more modules get more moves per temperature step.
    #[must_use]
    pub fn for_problem_size(n: usize) -> Self {
        let moves = (n.max(4) * 12).min(4000);
        Schedule::geometric(2_000.0, 0.05, 0.93, moves)
    }

    /// A short schedule for tests and smoke runs.
    #[must_use]
    pub fn fast() -> Self {
        Schedule::geometric(500.0, 1.0, 0.85, 40)
    }

    /// Caps the total number of proposals (builder style).
    #[must_use]
    pub fn with_max_moves(mut self, max_moves: u64) -> Self {
        self.max_moves = Some(max_moves);
        self
    }

    /// Starting temperature.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.t_start
    }

    /// Final temperature.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// Cooling factor per temperature step.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Proposals evaluated at every temperature step.
    #[must_use]
    pub fn moves_per_step(&self) -> usize {
        self.moves_per_step
    }

    /// Optional cap on the total number of proposals.
    #[must_use]
    pub fn max_moves(&self) -> Option<u64> {
        self.max_moves
    }

    /// Number of temperature steps the schedule will run.
    #[must_use]
    pub fn step_count(&self) -> usize {
        let mut t = self.t_start;
        let mut steps = 0usize;
        while t >= self.t_end {
            steps += 1;
            t *= self.alpha;
            if steps > 1_000_000 {
                break;
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_count_matches_geometric_decay() {
        let s = Schedule::geometric(100.0, 1.0, 0.5, 10);
        // 100, 50, 25, 12.5, 6.25, 3.125, 1.5625 -> 7 steps >= 1.0
        assert_eq!(s.step_count(), 7);
    }

    #[test]
    fn problem_size_scaling_is_monotone() {
        let small = Schedule::for_problem_size(10);
        let large = Schedule::for_problem_size(100);
        assert!(large.moves_per_step() >= small.moves_per_step());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = Schedule::geometric(10.0, 1.0, 1.5, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_temperature_panics() {
        let _ = Schedule::geometric(-1.0, 1.0, 0.9, 10);
    }

    #[test]
    fn max_moves_builder() {
        let s = Schedule::fast().with_max_moves(123);
        assert_eq!(s.max_moves(), Some(123));
    }
}
