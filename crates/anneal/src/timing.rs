//! Shared move-counting and timing statistics.
//!
//! Both the plain annealer ([`crate::AnnealStats`]) and the parallel-tempering
//! driver ([`crate::TemperingStats`]) count proposals and wall time the same
//! way; [`MoveStats`] is the single source of truth for those fields, so the
//! telemetry layer and the report JSON derive throughput from one place.

use std::time::Duration;

/// Proposal counters and wall time of one annealing-style run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MoveStats {
    /// Total proposals evaluated.
    pub attempted: u64,
    /// Proposals accepted (including uphill moves).
    pub accepted: u64,
    /// Uphill proposals accepted thanks to the Metropolis criterion.
    pub uphill: u64,
    /// Wall-clock time of the driving loop (evaluation included).
    pub wall_time: Duration,
}

impl MoveStats {
    /// Acceptance ratio over the whole run.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempted as f64
        }
    }

    /// Throughput: proposals evaluated per second of wall time (`None` when
    /// no move ran or the clock resolution swallowed the run).
    #[must_use]
    pub fn moves_per_second(&self) -> Option<f64> {
        let secs = self.wall_time.as_secs_f64();
        if self.attempted == 0 || secs <= 0.0 {
            None
        } else {
            Some(self.attempted as f64 / secs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_runs() {
        let stats = MoveStats::default();
        assert_eq!(stats.acceptance_ratio(), 0.0);
        assert_eq!(stats.moves_per_second(), None);
    }

    #[test]
    fn ratios_compute() {
        let stats =
            MoveStats { attempted: 10, accepted: 4, uphill: 1, wall_time: Duration::from_secs(2) };
        assert!((stats.acceptance_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(stats.moves_per_second(), Some(5.0));
    }
}
