//! Deterministic parallel tempering (replica exchange) over [`AnnealState`].
//!
//! Parallel tempering runs `K` replicas of the same annealing problem at a
//! ladder of temperatures. Between *rounds* of ordinary Metropolis moves,
//! adjacent temperature slots may exchange their replicas: a hot replica that
//! stumbled onto a good configuration hands it down the ladder, while the
//! cold slot's configuration is re-heated to escape its local minimum.
//!
//! # Determinism
//!
//! The driver is bit-identical at any worker thread count:
//!
//! * every replica owns a private RNG seeded via
//!   [`SeedStream::seed_for`]`(lane, replica_index)` — streams never depend
//!   on scheduling;
//! * the move phase is an order-preserving parallel map over the replicas
//!   (each replica touches only its own state and RNG);
//! * the exchange phase runs serially after every round, drawing from one
//!   dedicated swap RNG (`SeedStream::seed_for(lane, u64::MAX)`) with exactly
//!   one draw per attempted swap, so the swap schedule is a pure function of
//!   the seed and the replica costs.
//!
//! Telemetry ([`run_tempering_traced`]) observes the swap schedule without
//! participating in it: no collector ever touches a seed-stream lane.

use crate::rng::{SeedStream, SeededRng};
use crate::timing::MoveStats;
use crate::{AnnealState, Schedule};
use apls_telemetry::{event, Telemetry};
use rand::Rng;
use rayon::prelude::*;
use std::time::Instant;

/// Configuration of a parallel-tempering run.
#[derive(Debug, Clone)]
pub struct TemperingConfig {
    /// Root seed; replica and swap RNGs derive from it via [`SeedStream`].
    pub seed: u64,
    /// Seed-stream lane that namespaces this run's RNGs.
    pub lane: u64,
    /// Number of temperature replicas (at least 1).
    pub replicas: usize,
    /// Geometric spacing between adjacent ladder slots: slot `s` runs at
    /// `t_round * ladder_ratio^s`. Must be at least 1.
    pub ladder_ratio: f64,
    /// Base cooling schedule. Slot 0 follows it exactly: one tempering round
    /// per temperature step, [`Schedule::moves_per_step`] moves per round,
    /// and an optional [`Schedule::max_moves`] budget applied per replica.
    pub schedule: Schedule,
}

impl TemperingConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `replicas == 0` or `ladder_ratio < 1`.
    pub fn validate(&self) {
        assert!(self.replicas >= 1, "tempering needs at least one replica");
        assert!(
            self.ladder_ratio.is_finite() && self.ladder_ratio >= 1.0,
            "ladder ratio must be finite and at least 1"
        );
    }
}

/// Statistics of one parallel-tempering run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TemperingStats {
    /// Proposal counters (summed over all replicas) and wall time of the
    /// tempering loop — shared with the plain annealer's stats.
    pub moves: MoveStats,
    /// Tempering rounds executed (= temperature steps of the base schedule).
    pub rounds: u64,
    /// Replica exchanges attempted between adjacent ladder slots.
    pub swaps_attempted: u64,
    /// Replica exchanges accepted.
    pub swaps_accepted: u64,
    /// Cost of replica 0's initial state (all replicas start identically in
    /// the placement wrappers, but the driver only guarantees replica 0).
    pub initial_cost: f64,
    /// Best cost observed by any replica at any point of the run.
    pub best_cost: f64,
    /// Index of the replica that observed [`TemperingStats::best_cost`]
    /// first (lowest index on ties).
    pub best_replica: usize,
}

impl TemperingStats {
    /// Move acceptance ratio over all replicas.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        self.moves.acceptance_ratio()
    }

    /// Swap acceptance ratio over all rounds.
    #[must_use]
    pub fn swap_ratio(&self) -> f64 {
        if self.swaps_attempted == 0 {
            0.0
        } else {
            self.swaps_accepted as f64 / self.swaps_attempted as f64
        }
    }

    /// Tempering throughput: proposals evaluated per second of wall time
    /// (`None` when no move ran or the clock swallowed the run).
    #[must_use]
    pub fn moves_per_second(&self) -> Option<f64> {
        self.moves.moves_per_second()
    }
}

/// One replica's bundle on the move phase: state, private RNG, running cost
/// and counters. Owned, so the parallel map can ship it to a worker.
struct Replica<S> {
    state: S,
    rng: SeededRng,
    cost: f64,
    best_cost: f64,
    attempted: u64,
    accepted: u64,
    uphill: u64,
}

/// Runs parallel tempering over `replicas` (all assumed to encode the same
/// problem, typically from identical initial states) and returns the states
/// together with the run statistics.
///
/// Replica `k` starts at ladder slot `k` (slot 0 coldest). The final states
/// come back in *replica* order — inspect each state's own best snapshot and
/// [`TemperingStats::best_replica`] to recover the winner.
///
/// # Panics
///
/// Panics when `states.len() != config.replicas` or the configuration is
/// invalid (see [`TemperingConfig::validate`]).
pub fn run_tempering<S: AnnealState + Send>(
    states: Vec<S>,
    config: &TemperingConfig,
) -> (Vec<S>, TemperingStats) {
    run_tempering_traced(states, config, &Telemetry::disabled())
}

/// [`run_tempering`] with telemetry: emits a `tempering/tempering` span over
/// the run and one `tempering/swap_round` event per exchange phase (round
/// index, slot-0 temperature, swaps attempted/accepted in the round).
///
/// Telemetry is observe-only: the replica streams, the swap schedule and the
/// returned statistics are bit-identical to [`run_tempering`] whatever
/// collector is installed.
///
/// # Panics
///
/// Panics when `states.len() != config.replicas` or the configuration is
/// invalid (see [`TemperingConfig::validate`]).
pub fn run_tempering_traced<S: AnnealState + Send>(
    states: Vec<S>,
    config: &TemperingConfig,
    telemetry: &Telemetry,
) -> (Vec<S>, TemperingStats) {
    config.validate();
    assert_eq!(states.len(), config.replicas, "one state per replica required");
    let started = Instant::now();
    let enabled = telemetry.is_enabled();
    let mut span = telemetry.span("tempering", "tempering");
    span.arg("seed", config.seed);
    span.arg("replicas", config.replicas);
    let stream = SeedStream::new(config.seed);
    let schedule = &config.schedule;
    let k = config.replicas;

    // Initial evaluation, exactly like the plain annealer's first `cost()`.
    let mut replicas: Vec<Replica<S>> = states
        .into_iter()
        .enumerate()
        .map(|(i, mut state)| {
            let cost = state.cost();
            Replica {
                state,
                rng: stream.rng_for(config.lane, i as u64),
                cost,
                best_cost: cost,
                attempted: 0,
                accepted: 0,
                uphill: 0,
            }
        })
        .collect();
    let initial_cost = replicas[0].cost;

    // Ladder slot -> replica index; swaps permute this assignment so the
    // (large) states never move.
    let mut slots: Vec<usize> = (0..k).collect();
    let mut swap_rng = stream.rng_for(config.lane, u64::MAX);
    let mut stats = TemperingStats { initial_cost, best_cost: initial_cost, ..Default::default() };

    let mut t_round = schedule.t_start();
    let mut round = 0u64;
    while t_round >= schedule.t_end() {
        stats.rounds += 1;

        // --- move phase: every slot runs one round at its ladder temperature
        let mut temp_of_replica = vec![0.0f64; k];
        let mut ladder_t = t_round;
        for &replica in &slots {
            temp_of_replica[replica] = ladder_t;
            ladder_t *= config.ladder_ratio;
        }
        let moves_per_round = schedule.moves_per_step();
        let max_moves = schedule.max_moves();
        replicas = replicas
            .into_iter()
            .zip(temp_of_replica)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(mut r, temperature)| {
                metropolis_round(&mut r, temperature, moves_per_round, max_moves);
                r
            })
            .collect();

        // --- exchange phase: adjacent slots, alternating parity per round
        let swaps_attempted_before = stats.swaps_attempted;
        let swaps_accepted_before = stats.swaps_accepted;
        let parity = (round % 2) as usize;
        let mut s = parity;
        while s + 1 < k {
            let (i, j) = (slots[s], slots[s + 1]);
            let t_cold = temp_of_slot(t_round, config.ladder_ratio, s);
            let t_hot = temp_of_slot(t_round, config.ladder_ratio, s + 1);
            stats.swaps_attempted += 1;
            // Replica-exchange criterion: accept with min(1, exp(Δ)),
            // Δ = (1/T_cold − 1/T_hot) · (E_cold − E_hot). One RNG draw per
            // attempt keeps the swap stream independent of the outcome.
            let delta = (1.0 / t_cold - 1.0 / t_hot) * (replicas[i].cost - replicas[j].cost);
            let u = swap_rng.gen::<f64>();
            if delta >= 0.0 || u < delta.exp() {
                slots.swap(s, s + 1);
                stats.swaps_accepted += 1;
            }
            s += 2;
        }
        if enabled {
            event!(
                telemetry,
                "tempering",
                "swap_round",
                round = round,
                temperature = t_round,
                swaps_attempted = stats.swaps_attempted - swaps_attempted_before,
                swaps_accepted = stats.swaps_accepted - swaps_accepted_before,
            );
        }

        t_round *= schedule.alpha();
        round += 1;
    }

    for (i, r) in replicas.iter().enumerate() {
        stats.moves.attempted += r.attempted;
        stats.moves.accepted += r.accepted;
        stats.moves.uphill += r.uphill;
        if r.best_cost < stats.best_cost {
            stats.best_cost = r.best_cost;
            stats.best_replica = i;
        }
    }
    stats.moves.wall_time = started.elapsed();
    if enabled {
        span.arg("rounds", stats.rounds);
        span.arg("swaps_attempted", stats.swaps_attempted);
        span.arg("swaps_accepted", stats.swaps_accepted);
        span.arg("best_cost", stats.best_cost);
        span.arg("best_replica", stats.best_replica);
    }
    (replicas.into_iter().map(|r| r.state).collect(), stats)
}

/// Temperature of ladder slot `s` in a round whose slot-0 temperature is
/// `t_round`, matching the repeated-multiplication ladder of the move phase.
fn temp_of_slot(t_round: f64, ratio: f64, s: usize) -> f64 {
    let mut t = t_round;
    for _ in 0..s {
        t *= ratio;
    }
    t
}

/// One round of fixed-temperature Metropolis moves on one replica, following
/// the single-evaluation protocol of [`crate::Annealer::run`].
fn metropolis_round<S: AnnealState>(
    r: &mut Replica<S>,
    temperature: f64,
    moves: usize,
    max_moves: Option<u64>,
) {
    for _ in 0..moves {
        if let Some(cap) = max_moves {
            if r.attempted >= cap {
                return;
            }
        }
        r.attempted += 1;
        r.state.propose(&mut r.rng);
        let new_cost = r.state.cost();
        let delta = new_cost - r.cost;
        let accept = if delta <= 0.0 {
            true
        } else {
            let p = (-delta / temperature).exp();
            r.rng.gen::<f64>() < p
        };
        if accept {
            r.accepted += 1;
            if delta > 0.0 {
                r.uphill += 1;
            }
            r.cost = new_cost;
            r.state.commit(new_cost);
            if new_cost < r.best_cost {
                r.best_cost = new_cost;
            }
        } else {
            r.state.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_telemetry::RecordingCollector;
    use rand::RngCore;
    use std::sync::Arc;

    /// Minimises |x - target| over integers; snapshots its best in `commit`.
    #[derive(Debug, Clone)]
    struct Toy {
        x: i64,
        backup: i64,
        best: i64,
    }

    impl Toy {
        fn new(x: i64) -> Self {
            Toy { x, backup: x, best: x }
        }
    }

    impl AnnealState for Toy {
        fn cost(&mut self) -> f64 {
            (self.x - 37).abs() as f64
        }
        fn propose(&mut self, rng: &mut dyn RngCore) {
            self.backup = self.x;
            self.x += (rng.next_u32() % 11) as i64 - 5;
        }
        fn rollback(&mut self) {
            self.x = self.backup;
        }
        fn commit(&mut self, accepted_cost: f64) {
            if accepted_cost < (self.best - 37).abs() as f64 {
                self.best = self.x;
            }
        }
    }

    fn config(replicas: usize) -> TemperingConfig {
        TemperingConfig {
            seed: 5,
            lane: 9,
            replicas,
            ladder_ratio: 2.0,
            schedule: Schedule::geometric(50.0, 0.5, 0.8, 40),
        }
    }

    #[test]
    fn tempering_improves_and_reports_consistent_stats() {
        let states = vec![Toy::new(500); 4];
        let (finals, stats) = run_tempering(states, &config(4));
        assert_eq!(finals.len(), 4);
        assert!(stats.best_cost <= stats.initial_cost);
        assert!(stats.moves.attempted > 0);
        assert!(stats.moves.accepted <= stats.moves.attempted);
        assert!(stats.swaps_accepted <= stats.swaps_attempted);
        assert!(stats.rounds > 0);
        assert!(stats.best_replica < 4);
    }

    #[test]
    fn identical_configs_reproduce_identical_runs() {
        let run = || run_tempering(vec![Toy::new(200); 3], &config(3));
        let (a_states, a) = run();
        let (b_states, b) = run();
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.moves.accepted, b.moves.accepted);
        assert_eq!(a.swaps_accepted, b.swaps_accepted);
        for (x, y) in a_states.iter().zip(&b_states) {
            assert_eq!(x.x, y.x);
        }
        // an explicitly different run differs somewhere
        let mut other = config(3);
        other.seed = 6;
        let (_, c) = run_tempering(vec![Toy::new(200); 3], &other);
        assert!((a.best_cost, a.moves.accepted) != (c.best_cost, c.moves.accepted));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| run_tempering(vec![Toy::new(321); 5], &config(5)))
        };
        let (s1, a) = run_with(1);
        let (s4, b) = run_with(4);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.moves.accepted, b.moves.accepted);
        assert_eq!(a.swaps_accepted, b.swaps_accepted);
        for (x, y) in s1.iter().zip(&s4) {
            assert_eq!(x.x, y.x);
        }
    }

    #[test]
    #[should_panic(expected = "one state per replica")]
    fn replica_count_mismatch_panics() {
        let _ = run_tempering(vec![Toy::new(0); 2], &config(3));
    }

    /// Telemetry observes the swap schedule without perturbing it.
    #[test]
    fn traced_tempering_is_bit_identical_and_records_rounds() {
        let (plain_states, plain) = run_tempering(vec![Toy::new(250); 3], &config(3));
        let collector = Arc::new(RecordingCollector::new());
        let telemetry = Telemetry::with_collector(collector.clone());
        let (traced_states, traced) =
            run_tempering_traced(vec![Toy::new(250); 3], &config(3), &telemetry);
        assert_eq!(plain.best_cost, traced.best_cost);
        assert_eq!(plain.moves.attempted, traced.moves.attempted);
        assert_eq!(plain.swaps_accepted, traced.swaps_accepted);
        for (x, y) in plain_states.iter().zip(&traced_states) {
            assert_eq!(x.x, y.x);
        }
        let events = collector.events();
        let rounds = events.iter().filter(|e| e.name == "swap_round").count() as u64;
        assert_eq!(rounds, traced.rounds);
        assert!(events.iter().any(|e| e.ph == 'X' && e.name == "tempering"));
    }
}
