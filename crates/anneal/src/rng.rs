//! Deterministic, seedable random-number helpers.
//!
//! Every stochastic experiment in the workspace (simulated-annealing placers,
//! benchmark generators, sizing optimisers) takes an explicit `u64` seed so
//! that results are exactly reproducible. [`SeededRng`] is a thin wrapper over
//! a fixed, portable PRNG (`rand::rngs::StdRng`) chosen once here so that all
//! crates agree on the generator.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seedable, deterministic random number generator.
///
/// # Example
///
/// ```
/// use apls_anneal::rng::SeededRng;
/// use rand::Rng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// let xa: u32 = a.gen();
/// let xb: u32 = b.gen();
/// assert_eq!(xa, xb);
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; useful for giving each
    /// sub-experiment its own stream while keeping the top-level seed single.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> SeededRng {
        let mixed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(mixed)
    }
}

/// Stateless derivation of independent seeds from one root seed.
///
/// [`SeededRng::fork`] is stateful: the seed a child receives depends on how
/// many times the parent was sampled before the fork. Parallel multi-start
/// experiments need the opposite guarantee — the seed of worker *(lane,
/// index)* must depend only on the root seed and those two coordinates, so
/// that a portfolio run is reproducible regardless of thread count or
/// completion order. `SeedStream` provides exactly that: a pure function from
/// `(root, lane, index)` to a well-mixed 64-bit seed (two rounds of the
/// SplitMix64 finalizer over the xored coordinates).
///
/// # Example
///
/// ```
/// use apls_anneal::rng::SeedStream;
///
/// let stream = SeedStream::new(42);
/// // pure: same coordinates, same seed, in any call order
/// assert_eq!(stream.seed_for(2, 7), stream.seed_for(2, 7));
/// assert_ne!(stream.seed_for(2, 7), stream.seed_for(2, 8));
/// assert_ne!(stream.seed_for(2, 7), stream.seed_for(3, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `root`.
    #[must_use]
    pub fn new(root: u64) -> Self {
        SeedStream { root }
    }

    /// The root seed this stream derives from.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The seed of worker `(lane, index)`. Pure and order-independent.
    #[must_use]
    pub fn seed_for(&self, lane: u64, index: u64) -> u64 {
        let x = self
            .root
            .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(index.wrapping_mul(0x94D0_49BB_1331_11EB));
        mix64(mix64(x ^ (lane.rotate_left(32) ^ index)))
    }

    /// A ready-to-use generator for worker `(lane, index)`.
    #[must_use]
    pub fn rng_for(&self, lane: u64, index: u64) -> SeededRng {
        SeededRng::new(self.seed_for(lane, index))
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(8);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut parent1 = SeededRng::new(1);
        let mut parent2 = SeededRng::new(1);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn seed_stream_is_pure_and_order_independent() {
        let s = SeedStream::new(99);
        // sample in two different orders; the mapping must not care
        let forward: Vec<u64> = (0..16).map(|i| s.seed_for(1, i)).collect();
        let backward: Vec<u64> = (0..16).rev().map(|i| s.seed_for(1, i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn seed_stream_lanes_and_indices_are_distinct() {
        let s = SeedStream::new(7);
        let mut seen = std::collections::HashSet::new();
        for lane in 0..8u64 {
            for index in 0..64u64 {
                assert!(seen.insert(s.seed_for(lane, index)), "collision at {lane}/{index}");
            }
        }
    }

    #[test]
    fn seed_stream_roots_decorrelate() {
        let a = SeedStream::new(1);
        let b = SeedStream::new(2);
        let va: Vec<u64> = (0..8).map(|i| a.seed_for(0, i)).collect();
        let vb: Vec<u64> = (0..8).map(|i| b.seed_for(0, i)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
        }
    }
}
