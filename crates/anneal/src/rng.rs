//! Deterministic, seedable random-number helpers.
//!
//! Every stochastic experiment in the workspace (simulated-annealing placers,
//! benchmark generators, sizing optimisers) takes an explicit `u64` seed so
//! that results are exactly reproducible. [`SeededRng`] is a thin wrapper over
//! a fixed, portable PRNG (`rand::rngs::StdRng`) chosen once here so that all
//! crates agree on the generator.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seedable, deterministic random number generator.
///
/// # Example
///
/// ```
/// use apls_anneal::rng::SeededRng;
/// use rand::Rng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// let xa: u32 = a.gen();
/// let xb: u32 = b.gen();
/// assert_eq!(xa, xb);
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; useful for giving each
    /// sub-experiment its own stream while keeping the top-level seed single.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> SeededRng {
        let mixed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(mixed)
    }
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(8);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut parent1 = SeededRng::new(1);
        let mut parent2 = SeededRng::new(1);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
        }
    }
}
