//! The simulated-annealing driver.

use crate::timing::MoveStats;
use crate::{rng::SeededRng, AnnealState, Schedule};
use apls_telemetry::{event, Telemetry};
use rand::Rng;
use std::time::Instant;

/// Statistics of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnnealStats {
    /// Proposal counters and wall time (shared with the tempering driver).
    pub moves: MoveStats,
    /// Cost of the initial state.
    pub initial_cost: f64,
    /// Best cost observed during the run.
    pub best_cost: f64,
    /// Cost of the final state (equal to `best_cost` because the driver
    /// restores the best state before returning when the state supports it via
    /// cost monotonicity of rollbacks; see [`Annealer::run`]).
    pub final_cost: f64,
    /// Number of temperature steps executed.
    pub temperature_steps: u64,
}

impl AnnealStats {
    /// Acceptance ratio over the whole run.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        self.moves.acceptance_ratio()
    }

    /// Relative cost improvement from the initial to the final state.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if self.initial_cost == 0.0 {
            0.0
        } else {
            (self.initial_cost - self.final_cost) / self.initial_cost
        }
    }

    /// Annealing throughput: proposals evaluated per second of wall time
    /// (`None` when no move ran or the clock resolution swallowed the run).
    #[must_use]
    pub fn moves_per_second(&self) -> Option<f64> {
        self.moves.moves_per_second()
    }
}

/// Simulated-annealing driver with a deterministic seed.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct Annealer {
    seed: u64,
}

impl Annealer {
    /// Creates an annealer with the default seed.
    #[must_use]
    pub fn new() -> Self {
        Annealer { seed: 0xA91A5 }
    }

    /// Creates an annealer with an explicit seed; the same seed, state and
    /// schedule reproduce the identical run.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Annealer { seed }
    }

    /// Runs the annealing loop on `state` under `schedule`.
    ///
    /// The classic Metropolis criterion is used: downhill moves are always
    /// accepted, uphill moves with probability `exp(-Δ/T)`. Each proposal is
    /// evaluated exactly once; the accepted cost is handed to
    /// [`AnnealState::commit`] so states never pay a second evaluation. The
    /// state is left in its last *accepted* configuration; callers that must
    /// recover the global best configuration should snapshot it in `commit`.
    pub fn run<S: AnnealState>(&self, state: &mut S, schedule: &Schedule) -> AnnealStats {
        self.run_traced(state, schedule, &Telemetry::disabled())
    }

    /// [`Annealer::run`] with telemetry: emits an `anneal/anneal` span over
    /// the run, one `anneal/temp_step` event per temperature step (the cost
    /// trajectory and per-step acceptance rate) and a final
    /// `anneal/move_mix` event tallying [`AnnealState::move_kind`] labels.
    ///
    /// Telemetry is observe-only: the RNG stream, the visit order and the
    /// returned statistics are bit-identical to [`Annealer::run`] whatever
    /// collector is installed.
    pub fn run_traced<S: AnnealState>(
        &self,
        state: &mut S,
        schedule: &Schedule,
        telemetry: &Telemetry,
    ) -> AnnealStats {
        let started = Instant::now();
        let enabled = telemetry.is_enabled();
        let mut span = telemetry.span("anneal", "anneal");
        span.arg("seed", self.seed);
        let mut mix: Vec<(&'static str, u64)> = Vec::new();
        let mut rng = SeededRng::new(self.seed);
        let initial_cost = state.cost();
        let mut stats = AnnealStats {
            initial_cost,
            best_cost: initial_cost,
            final_cost: initial_cost,
            ..AnnealStats::default()
        };
        let mut current_cost = initial_cost;
        let mut temperature = schedule.t_start();

        'outer: while temperature >= schedule.t_end() {
            stats.temperature_steps += 1;
            let attempted_before = stats.moves.attempted;
            let accepted_before = stats.moves.accepted;
            for _ in 0..schedule.moves_per_step() {
                if let Some(cap) = schedule.max_moves() {
                    if stats.moves.attempted >= cap {
                        break 'outer;
                    }
                }
                stats.moves.attempted += 1;
                state.propose(&mut rng);
                if enabled {
                    tally(&mut mix, state.move_kind());
                }
                let new_cost = state.cost();
                let delta = new_cost - current_cost;
                let accept = if delta <= 0.0 {
                    true
                } else {
                    let p = (-delta / temperature).exp();
                    rng.gen::<f64>() < p
                };
                if accept {
                    stats.moves.accepted += 1;
                    if delta > 0.0 {
                        stats.moves.uphill += 1;
                    }
                    current_cost = new_cost;
                    state.commit(new_cost);
                    if new_cost < stats.best_cost {
                        stats.best_cost = new_cost;
                    }
                } else {
                    state.rollback();
                }
            }
            if enabled {
                event!(
                    telemetry,
                    "anneal",
                    "temp_step",
                    step = stats.temperature_steps - 1,
                    temperature = temperature,
                    attempted = stats.moves.attempted - attempted_before,
                    accepted = stats.moves.accepted - accepted_before,
                    current_cost = current_cost,
                    best_cost = stats.best_cost,
                );
            }
            temperature *= schedule.alpha();
        }
        stats.final_cost = current_cost;
        stats.moves.wall_time = started.elapsed();
        if enabled {
            let args = mix
                .iter()
                .map(|&(kind, count)| (kind.to_string(), apls_telemetry::Value::U64(count)))
                .collect();
            telemetry.instant("anneal", "move_mix", args);
            span.arg("initial_cost", stats.initial_cost);
            span.arg("best_cost", stats.best_cost);
            span.arg("attempted", stats.moves.attempted);
            span.arg("accepted", stats.moves.accepted);
            span.arg("temperature_steps", stats.temperature_steps);
        }
        stats
    }
}

/// Increments `kind`'s slot in the (tiny) move-mix tally.
fn tally(mix: &mut Vec<(&'static str, u64)>, kind: &'static str) {
    for entry in mix.iter_mut() {
        if entry.0 == kind {
            entry.1 += 1;
            return;
        }
    }
    mix.push((kind, 1));
}

impl Default for Annealer {
    fn default() -> Self {
        Annealer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_telemetry::RecordingCollector;
    use rand::RngCore;
    use std::sync::Arc;

    /// Minimises |x - 37| over integers.
    struct Target {
        x: i64,
        backup: i64,
    }

    impl AnnealState for Target {
        fn cost(&mut self) -> f64 {
            (self.x - 37).abs() as f64
        }
        fn propose(&mut self, rng: &mut dyn RngCore) {
            self.backup = self.x;
            let step = (rng.next_u32() % 11) as i64 - 5;
            self.x += step;
        }
        fn rollback(&mut self) {
            self.x = self.backup;
        }
        fn move_kind(&self) -> &'static str {
            if self.x >= self.backup {
                "step_up"
            } else {
                "step_down"
            }
        }
    }

    #[test]
    fn annealing_converges_on_simple_target() {
        let mut state = Target { x: 500, backup: 0 };
        let schedule = Schedule::geometric(50.0, 0.01, 0.9, 100);
        let stats = Annealer::with_seed(1).run(&mut state, &schedule);
        assert!(stats.final_cost <= stats.initial_cost);
        assert!(stats.final_cost < 20.0, "final cost {}", stats.final_cost);
        assert!(stats.moves.accepted > 0);
    }

    #[test]
    fn same_seed_reproduces_identical_runs() {
        let schedule = Schedule::fast();
        let mut a = Target { x: 400, backup: 0 };
        let mut b = Target { x: 400, backup: 0 };
        let sa = Annealer::with_seed(99).run(&mut a, &schedule);
        let sb = Annealer::with_seed(99).run(&mut b, &schedule);
        assert_eq!(a.x, b.x);
        assert_eq!(sa.moves.accepted, sb.moves.accepted);
        assert_eq!(sa.final_cost, sb.final_cost);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let schedule = Schedule::fast();
        let mut a = Target { x: 400, backup: 0 };
        let mut b = Target { x: 400, backup: 0 };
        Annealer::with_seed(1).run(&mut a, &schedule);
        Annealer::with_seed(2).run(&mut b, &schedule);
        // Not a hard guarantee, but with these seeds the trajectories differ.
        assert_ne!(a.x, b.x);
    }

    #[test]
    fn max_moves_caps_the_run() {
        let mut state = Target { x: 1000, backup: 0 };
        let schedule = Schedule::geometric(50.0, 0.01, 0.99, 1000).with_max_moves(10);
        let stats = Annealer::with_seed(3).run(&mut state, &schedule);
        assert_eq!(stats.moves.attempted, 10);
    }

    /// The single-evaluation contract: every committed cost equals the cost
    /// the driver evaluated for that proposal, so states never re-evaluate.
    struct Auditing {
        inner: Target,
        committed: Vec<f64>,
    }

    impl AnnealState for Auditing {
        fn cost(&mut self) -> f64 {
            self.inner.cost()
        }
        fn propose(&mut self, rng: &mut dyn RngCore) {
            self.inner.propose(rng);
        }
        fn rollback(&mut self) {
            self.inner.rollback();
        }
        fn commit(&mut self, accepted_cost: f64) {
            assert_eq!(accepted_cost, self.inner.cost(), "commit cost must match evaluation");
            self.committed.push(accepted_cost);
        }
    }

    #[test]
    fn commit_receives_the_evaluated_cost() {
        let mut state = Auditing { inner: Target { x: 300, backup: 0 }, committed: Vec::new() };
        let stats = Annealer::with_seed(8).run(&mut state, &Schedule::fast());
        assert_eq!(state.committed.len() as u64, stats.moves.accepted);
        let min_committed = state.committed.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min_committed, stats.best_cost);
    }

    #[test]
    fn throughput_is_reported() {
        let mut state = Target { x: 250, backup: 0 };
        let stats = Annealer::with_seed(6).run(&mut state, &Schedule::fast());
        assert!(stats.moves.attempted > 0);
        if let Some(mps) = stats.moves_per_second() {
            assert!(mps > 0.0);
        }
        assert_eq!(AnnealStats::default().moves_per_second(), None);
    }

    #[test]
    fn stats_ratios_are_sane() {
        let mut state = Target { x: 200, backup: 0 };
        let stats = Annealer::with_seed(5).run(&mut state, &Schedule::fast());
        let ratio = stats.acceptance_ratio();
        assert!((0.0..=1.0).contains(&ratio));
        assert!(stats.moves.uphill <= stats.moves.accepted);
    }

    /// Telemetry is observe-only: the traced run returns bit-identical stats
    /// and state, and records the cost trajectory plus the move mix.
    #[test]
    fn traced_run_is_bit_identical_and_records_trajectory() {
        let schedule = Schedule::fast();
        let mut plain = Target { x: 400, backup: 0 };
        let plain_stats = Annealer::with_seed(42).run(&mut plain, &schedule);

        let collector = Arc::new(RecordingCollector::new());
        let telemetry = Telemetry::with_collector(collector.clone());
        let mut traced = Target { x: 400, backup: 0 };
        let traced_stats = Annealer::with_seed(42).run_traced(&mut traced, &schedule, &telemetry);

        assert_eq!(plain.x, traced.x);
        assert_eq!(plain_stats.moves.attempted, traced_stats.moves.attempted);
        assert_eq!(plain_stats.moves.accepted, traced_stats.moves.accepted);
        assert_eq!(plain_stats.best_cost, traced_stats.best_cost);
        assert_eq!(plain_stats.final_cost, traced_stats.final_cost);

        let events = collector.events();
        let steps = events.iter().filter(|e| e.name == "temp_step").count() as u64;
        assert_eq!(steps, traced_stats.temperature_steps);
        let mix = events.iter().find(|e| e.name == "move_mix").expect("move_mix event");
        let tallied: u64 = mix
            .args
            .iter()
            .map(|(_, v)| match v {
                apls_telemetry::Value::U64(n) => *n,
                _ => 0,
            })
            .sum();
        assert_eq!(tallied, traced_stats.moves.attempted);
        assert!(events.iter().any(|e| e.ph == 'X' && e.name == "anneal"));
    }
}
