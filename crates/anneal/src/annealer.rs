//! The simulated-annealing driver.

use crate::{rng::SeededRng, AnnealState, Schedule};
use rand::Rng;
use std::time::{Duration, Instant};

/// Statistics of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnnealStats {
    /// Total proposals evaluated.
    pub moves_attempted: u64,
    /// Proposals accepted (including uphill moves).
    pub moves_accepted: u64,
    /// Uphill proposals accepted thanks to the Metropolis criterion.
    pub uphill_accepted: u64,
    /// Cost of the initial state.
    pub initial_cost: f64,
    /// Best cost observed during the run.
    pub best_cost: f64,
    /// Cost of the final state (equal to `best_cost` because the driver
    /// restores the best state before returning when the state supports it via
    /// cost monotonicity of rollbacks; see [`Annealer::run`]).
    pub final_cost: f64,
    /// Number of temperature steps executed.
    pub temperature_steps: u64,
    /// Wall-clock time of the annealing loop (evaluation included).
    pub wall_time: Duration,
}

impl AnnealStats {
    /// Acceptance ratio over the whole run.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        if self.moves_attempted == 0 {
            0.0
        } else {
            self.moves_accepted as f64 / self.moves_attempted as f64
        }
    }

    /// Relative cost improvement from the initial to the final state.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if self.initial_cost == 0.0 {
            0.0
        } else {
            (self.initial_cost - self.final_cost) / self.initial_cost
        }
    }

    /// Annealing throughput: proposals evaluated per second of wall time
    /// (`None` when no move ran or the clock resolution swallowed the run).
    #[must_use]
    pub fn moves_per_second(&self) -> Option<f64> {
        let secs = self.wall_time.as_secs_f64();
        if self.moves_attempted == 0 || secs <= 0.0 {
            None
        } else {
            Some(self.moves_attempted as f64 / secs)
        }
    }
}

/// Simulated-annealing driver with a deterministic seed.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct Annealer {
    seed: u64,
}

impl Annealer {
    /// Creates an annealer with the default seed.
    #[must_use]
    pub fn new() -> Self {
        Annealer { seed: 0xA91A5 }
    }

    /// Creates an annealer with an explicit seed; the same seed, state and
    /// schedule reproduce the identical run.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Annealer { seed }
    }

    /// Runs the annealing loop on `state` under `schedule`.
    ///
    /// The classic Metropolis criterion is used: downhill moves are always
    /// accepted, uphill moves with probability `exp(-Δ/T)`. Each proposal is
    /// evaluated exactly once; the accepted cost is handed to
    /// [`AnnealState::commit`] so states never pay a second evaluation. The
    /// state is left in its last *accepted* configuration; callers that must
    /// recover the global best configuration should snapshot it in `commit`.
    pub fn run<S: AnnealState>(&self, state: &mut S, schedule: &Schedule) -> AnnealStats {
        let started = Instant::now();
        let mut rng = SeededRng::new(self.seed);
        let initial_cost = state.cost();
        let mut stats = AnnealStats {
            initial_cost,
            best_cost: initial_cost,
            final_cost: initial_cost,
            ..AnnealStats::default()
        };
        let mut current_cost = initial_cost;
        let mut temperature = schedule.t_start();

        'outer: while temperature >= schedule.t_end() {
            stats.temperature_steps += 1;
            for _ in 0..schedule.moves_per_step() {
                if let Some(cap) = schedule.max_moves() {
                    if stats.moves_attempted >= cap {
                        break 'outer;
                    }
                }
                stats.moves_attempted += 1;
                state.propose(&mut rng);
                let new_cost = state.cost();
                let delta = new_cost - current_cost;
                let accept = if delta <= 0.0 {
                    true
                } else {
                    let p = (-delta / temperature).exp();
                    rng.gen::<f64>() < p
                };
                if accept {
                    stats.moves_accepted += 1;
                    if delta > 0.0 {
                        stats.uphill_accepted += 1;
                    }
                    current_cost = new_cost;
                    state.commit(new_cost);
                    if new_cost < stats.best_cost {
                        stats.best_cost = new_cost;
                    }
                } else {
                    state.rollback();
                }
            }
            temperature *= schedule.alpha();
        }
        stats.final_cost = current_cost;
        stats.wall_time = started.elapsed();
        stats
    }
}

impl Default for Annealer {
    fn default() -> Self {
        Annealer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    /// Minimises |x - 37| over integers.
    struct Target {
        x: i64,
        backup: i64,
    }

    impl AnnealState for Target {
        fn cost(&mut self) -> f64 {
            (self.x - 37).abs() as f64
        }
        fn propose(&mut self, rng: &mut dyn RngCore) {
            self.backup = self.x;
            let step = (rng.next_u32() % 11) as i64 - 5;
            self.x += step;
        }
        fn rollback(&mut self) {
            self.x = self.backup;
        }
    }

    #[test]
    fn annealing_converges_on_simple_target() {
        let mut state = Target { x: 500, backup: 0 };
        let schedule = Schedule::geometric(50.0, 0.01, 0.9, 100);
        let stats = Annealer::with_seed(1).run(&mut state, &schedule);
        assert!(stats.final_cost <= stats.initial_cost);
        assert!(stats.final_cost < 20.0, "final cost {}", stats.final_cost);
        assert!(stats.moves_accepted > 0);
    }

    #[test]
    fn same_seed_reproduces_identical_runs() {
        let schedule = Schedule::fast();
        let mut a = Target { x: 400, backup: 0 };
        let mut b = Target { x: 400, backup: 0 };
        let sa = Annealer::with_seed(99).run(&mut a, &schedule);
        let sb = Annealer::with_seed(99).run(&mut b, &schedule);
        assert_eq!(a.x, b.x);
        assert_eq!(sa.moves_accepted, sb.moves_accepted);
        assert_eq!(sa.final_cost, sb.final_cost);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let schedule = Schedule::fast();
        let mut a = Target { x: 400, backup: 0 };
        let mut b = Target { x: 400, backup: 0 };
        Annealer::with_seed(1).run(&mut a, &schedule);
        Annealer::with_seed(2).run(&mut b, &schedule);
        // Not a hard guarantee, but with these seeds the trajectories differ.
        assert_ne!(a.x, b.x);
    }

    #[test]
    fn max_moves_caps_the_run() {
        let mut state = Target { x: 1000, backup: 0 };
        let schedule = Schedule::geometric(50.0, 0.01, 0.99, 1000).with_max_moves(10);
        let stats = Annealer::with_seed(3).run(&mut state, &schedule);
        assert_eq!(stats.moves_attempted, 10);
    }

    /// The single-evaluation contract: every committed cost equals the cost
    /// the driver evaluated for that proposal, so states never re-evaluate.
    struct Auditing {
        inner: Target,
        committed: Vec<f64>,
    }

    impl AnnealState for Auditing {
        fn cost(&mut self) -> f64 {
            self.inner.cost()
        }
        fn propose(&mut self, rng: &mut dyn RngCore) {
            self.inner.propose(rng);
        }
        fn rollback(&mut self) {
            self.inner.rollback();
        }
        fn commit(&mut self, accepted_cost: f64) {
            assert_eq!(accepted_cost, self.inner.cost(), "commit cost must match evaluation");
            self.committed.push(accepted_cost);
        }
    }

    #[test]
    fn commit_receives_the_evaluated_cost() {
        let mut state = Auditing { inner: Target { x: 300, backup: 0 }, committed: Vec::new() };
        let stats = Annealer::with_seed(8).run(&mut state, &Schedule::fast());
        assert_eq!(state.committed.len() as u64, stats.moves_accepted);
        let min_committed = state.committed.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min_committed, stats.best_cost);
    }

    #[test]
    fn throughput_is_reported() {
        let mut state = Target { x: 250, backup: 0 };
        let stats = Annealer::with_seed(6).run(&mut state, &Schedule::fast());
        assert!(stats.moves_attempted > 0);
        if let Some(mps) = stats.moves_per_second() {
            assert!(mps > 0.0);
        }
        assert_eq!(AnnealStats::default().moves_per_second(), None);
    }

    #[test]
    fn stats_ratios_are_sane() {
        let mut state = Target { x: 200, backup: 0 };
        let stats = Annealer::with_seed(5).run(&mut state, &Schedule::fast());
        let ratio = stats.acceptance_ratio();
        assert!((0.0..=1.0).contains(&ratio));
        assert!(stats.uphill_accepted <= stats.moves_accepted);
    }
}
