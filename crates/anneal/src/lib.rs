//! Generic simulated-annealing engine for topological analog placement.
//!
//! Both the sequence-pair placer (Section II of the DATE 2009 survey) and the
//! B*-tree / HB*-tree placer (Section III) explore their topological encodings
//! with simulated annealing. This crate provides the shared engine:
//!
//! * [`AnnealState`] — the trait an encoding implements: propose a perturbation,
//!   evaluate a cost, accept or roll back;
//! * [`Schedule`] — geometric cooling schedules with configurable start/end
//!   temperature, moves per temperature step, and an optional move budget;
//! * [`Annealer`] — the driver, which reports [`AnnealStats`];
//! * [`rng`] — deterministic seedable RNG helpers ([`rng::SeededRng`]) and
//!   stateless per-worker seed derivation ([`rng::SeedStream`]) so that every
//!   experiment in the workspace — including parallel multi-start portfolios
//!   — is exactly reproducible.
//!
//! # Example
//!
//! A toy "state" that anneals an integer toward zero:
//!
//! ```
//! use apls_anneal::{AnnealState, Annealer, Schedule};
//! use rand::Rng;
//!
//! struct Toy { value: i64, backup: i64 }
//!
//! impl AnnealState for Toy {
//!     fn cost(&mut self) -> f64 { self.value.abs() as f64 }
//!     fn propose(&mut self, rng: &mut dyn rand::RngCore) {
//!         self.backup = self.value;
//!         let delta: i64 = (rng.next_u32() % 7) as i64 - 3;
//!         self.value += delta;
//!     }
//!     fn rollback(&mut self) { self.value = self.backup; }
//! }
//!
//! let mut state = Toy { value: 100, backup: 0 };
//! let schedule = Schedule::geometric(10.0, 0.01, 0.9, 50);
//! let stats = Annealer::with_seed(7).run(&mut state, &schedule);
//! assert!(state.value.abs() <= 100);
//! assert!(stats.moves.attempted > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealer;
pub mod rng;
mod schedule;
pub mod tempering;
mod timing;

pub use annealer::{AnnealStats, Annealer};
pub use schedule::Schedule;
pub use tempering::{run_tempering, run_tempering_traced, TemperingConfig, TemperingStats};
pub use timing::MoveStats;

use rand::RngCore;

/// A state that can be explored by simulated annealing.
///
/// The protocol is propose → evaluate → accept or [`AnnealState::rollback`].
///
/// **Single-evaluation contract:** the engine calls [`AnnealState::propose`]
/// exactly once per move, then [`AnnealState::cost`] exactly once for that
/// proposal, and finally either [`AnnealState::commit`] — passing the cost it
/// just evaluated — or [`AnnealState::rollback`]. Implementations therefore
/// never need to re-evaluate inside `commit`, and `cost` may freely reuse
/// internal scratch buffers (it takes `&mut self` for exactly that reason).
/// `rollback` is only ever called for the most recent proposal, so one undo
/// record suffices.
pub trait AnnealState {
    /// Cost of the current state (lower is better).
    ///
    /// Called exactly once per proposal (and once before the run starts for
    /// the initial cost), so this is the natural place to pack the encoding
    /// into reusable scratch storage.
    fn cost(&mut self) -> f64;

    /// Applies a random perturbation to the state.
    ///
    /// Implementations must store whatever is needed to undo this single
    /// perturbation if the engine rejects it (an O(1) undo log; cloning the
    /// whole state works but defeats the hot path).
    fn propose(&mut self, rng: &mut dyn RngCore);

    /// Undoes the most recent proposal.
    fn rollback(&mut self);

    /// Called when a proposal is accepted, with the cost the engine evaluated
    /// for it. The default does nothing; states that track a best-so-far
    /// snapshot use this hook without re-evaluating anything.
    fn commit(&mut self, _accepted_cost: f64) {}

    /// Short static label of the *most recent* proposal's move type, used by
    /// telemetry to report the move-type mix of a run. Only queried between
    /// [`AnnealState::propose`] and the accept/reject decision, and only when
    /// a trace collector is installed — implementations just return a label
    /// recorded during `propose`. The default lumps everything under
    /// `"move"`.
    fn move_kind(&self) -> &'static str {
        "move"
    }
}
