//! Scaling of the multi-start portfolio: wall time of an 8-restart portfolio
//! on the Fig. 6 Miller op-amp with 1 worker thread vs. one per core. The
//! results are bit-identical either way; only wall time may differ.

use apls_circuit::benchmarks;
use apls_portfolio::{run_portfolio, PortfolioConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_portfolio_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_8_restarts");
    group.sample_size(10);
    let circuit = benchmarks::miller_opamp_fig6();
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for threads in [1usize, auto] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            let config = PortfolioConfig::new(11)
                .with_restarts(8)
                .with_fast_schedule(true)
                .with_threads(threads);
            b.iter(|| run_portfolio(&circuit, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio_threads);
criterion_main!(benches);
