//! Criterion companion of Table I: cost of one deterministic placement run
//! with enhanced vs regular shape functions, and of a single enhanced vs
//! regular shape addition.

use apls_circuit::benchmarks;
use apls_circuit::ModuleId;
use apls_geometry::Dims;
use apls_shapefn::{DeterministicPlacer, EnhancedShapeFunction, ShapeFunction, ShapeModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_deterministic_placer(c: &mut Criterion) {
    let mut group = c.benchmark_group("deterministic_placer");
    group.sample_size(10);
    for circuit in
        [benchmarks::comparator_v2(), benchmarks::miller_v2(), benchmarks::folded_cascode()]
    {
        let placer = DeterministicPlacer::new(&circuit);
        group.bench_with_input(
            BenchmarkId::new("enhanced", circuit.module_count()),
            &circuit.module_count(),
            |b, _| b.iter(|| placer.run(ShapeModel::Enhanced)),
        );
        group.bench_with_input(
            BenchmarkId::new("regular", circuit.module_count()),
            &circuit.module_count(),
            |b, _| b.iter(|| placer.run(ShapeModel::Regular)),
        );
    }
    group.finish();
}

fn bench_single_addition(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape_addition");
    let dims: Vec<Dims> = (0..8).map(|i| Dims::new(10 + 7 * i as i64, 40 - 4 * i as i64)).collect();
    let id = ModuleId::from_index;

    let mut esf_a = EnhancedShapeFunction::for_module(id(0), &dims, true);
    for i in 1..4 {
        esf_a = esf_a.add(&EnhancedShapeFunction::for_module(id(i), &dims, true), &dims);
    }
    let mut esf_b = EnhancedShapeFunction::for_module(id(4), &dims, true);
    for i in 5..8 {
        esf_b = esf_b.add(&EnhancedShapeFunction::for_module(id(i), &dims, true), &dims);
    }
    group.bench_function("enhanced_add", |b| b.iter(|| esf_a.add(&esf_b, &dims)));

    let mut sf_a = ShapeFunction::for_module(dims[0], true);
    for &d in &dims[1..4] {
        sf_a = sf_a.add_both(&ShapeFunction::for_module(d, true));
    }
    let mut sf_b = ShapeFunction::for_module(dims[4], true);
    for &d in &dims[5..8] {
        sf_b = sf_b.add_both(&ShapeFunction::for_module(d, true));
    }
    group.bench_function("regular_add", |b| b.iter(|| sf_a.add_both(&sf_b)));
    group.finish();
}

criterion_group!(benches, bench_deterministic_placer, bench_single_addition);
criterion_main!(benches);
