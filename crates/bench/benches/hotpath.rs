//! Hot-path micro- and macro-benchmarks: contour placement, B*-tree packing,
//! and end-to-end annealing throughput (moves/sec) per engine.
//!
//! The recorded trajectory lives in `BENCH_hotpath.json` at the repository
//! root: every PR that touches the evaluation pipeline re-runs this bench and
//! appends its numbers so regressions are visible in review.

use apls_anneal::Schedule;
use apls_bench::{random_dims, random_permutation};
use apls_btree::{
    pack_btree, pack_btree_into, BStarTree, BTreePlacer, HbTreePlacer, HbTreePlacerConfig,
    PackScratch, PackedBTree,
};
use apls_circuit::benchmarks::{self, GeneratorConfig};
use apls_circuit::{DeltaCost, ModuleId, Placement};
use apls_geometry::{Contour, Orientation, Rect};
use apls_seqpair::{SeqPairPlacer, SeqPairPlacerConfig};
use apls_telemetry::{RecordingCollector, Telemetry};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

/// Moves budget of the end-to-end engine benches; moves/sec = MOVES / time.
const MOVES: u64 = 2000;

fn bench_contour_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("contour_place");
    for &n in &[20usize, 100, 400] {
        let dims = random_dims(n, 3);
        group.bench_with_input(BenchmarkId::new("modules", n), &n, |b, _| {
            b.iter(|| {
                let mut contour = Contour::new();
                let mut x = 0;
                for (i, d) in dims.iter().enumerate() {
                    // staircase of overlapping spans exercises splits + merges
                    contour.place(x, d.w, d.h);
                    x += if i % 3 == 0 { d.w / 2 } else { d.w };
                }
                contour.max_height()
            });
        });
    }
    group.finish();
}

fn bench_pack_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_btree");
    for &n in &[10usize, 50, 200] {
        let dims = random_dims(n, 7);
        let tree = BStarTree::balanced(&random_permutation(n, 17));
        group.bench_with_input(BenchmarkId::new("alloc", n), &n, |b, _| {
            b.iter(|| pack_btree(&tree, &dims));
        });
        group.bench_with_input(BenchmarkId::new("scratch", n), &n, |b, _| {
            let mut scratch = PackScratch::new();
            let mut packed = PackedBTree::new();
            b.iter(|| {
                pack_btree_into(&mut scratch, &tree, &dims, &mut packed);
                packed.area()
            });
        });
    }
    group.finish();
}

fn bench_delta_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_eval");
    for &n in &[10usize, 50, 200] {
        let circuit = benchmarks::generate(
            "delta_bench",
            GeneratorConfig { module_count: n, seed: 11, ..GeneratorConfig::default() },
        );
        let netlist = &circuit.netlist;
        let adjacency = netlist.adjacency();
        let dims = netlist.default_dims();

        // A deterministic diagonal placement; the benched move walks one
        // module back and forth so the committed geometry never drifts.
        let mut placement = Placement::new(netlist);
        for (i, m) in netlist.module_ids().enumerate() {
            let d = dims[i];
            let x = 40 * i as i64;
            placement.place(m, Rect::new(x, x, x + d.w, x + d.h), Orientation::R0, 0);
        }
        let moved = ModuleId::from_index(n / 2);
        let home = placement.get(moved).expect("placed").rect;
        let away =
            Rect::new(home.x_min + 500, home.y_min + 500, home.x_max + 500, home.y_max + 500);

        // Incremental: one module moves, only its incident nets re-total.
        group.bench_with_input(BenchmarkId::new("delta_hpwl", n), &n, |b, _| {
            let mut delta = DeltaCost::new(adjacency.clone(), netlist.module_count());
            delta.begin();
            delta.refresh_all(|m| placement.get(m).map(|pm| pm.rect));
            delta.commit();
            let mut there = false;
            b.iter(|| {
                there = !there;
                let rect = if there { away } else { home };
                delta.begin();
                let wl = delta.delta_hpwl(&[moved], |q| {
                    if q == moved {
                        Some(rect)
                    } else {
                        placement.get(q).map(|pm| pm.rect)
                    }
                });
                delta.commit();
                wl
            });
        });

        // Reference: the same move scored by a from-scratch full-net sweep.
        group.bench_with_input(BenchmarkId::new("full_sweep", n), &n, |b, _| {
            let mut there = false;
            b.iter(|| {
                there = !there;
                let rect = if there { away } else { home };
                let mut delta = DeltaCost::new(adjacency.clone(), netlist.module_count());
                delta.begin();
                delta.refresh_all(|q| {
                    if q == moved {
                        Some(rect)
                    } else {
                        placement.get(q).map(|pm| pm.rect)
                    }
                })
            });
        });
    }
    group.finish();
}

fn bench_engine_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_moves");
    group.sample_size(10);
    let schedule = Schedule::geometric(1e6, 1.0, 0.95, 200).with_max_moves(MOVES);
    let circuit = benchmarks::comparator_v2();

    group.bench_with_input(
        BenchmarkId::new("flat_btree_2000", circuit.module_count()),
        &0,
        |b, _| {
            let config = HbTreePlacerConfig { seed: 3, schedule, ..HbTreePlacerConfig::default() };
            let placer = BTreePlacer::new(&circuit.netlist, &circuit.constraints);
            b.iter(|| placer.run(&config));
        },
    );
    group.bench_with_input(BenchmarkId::new("hbtree_2000", circuit.module_count()), &0, |b, _| {
        let config = HbTreePlacerConfig { seed: 3, schedule, ..HbTreePlacerConfig::default() };
        let placer = HbTreePlacer::new(&circuit);
        b.iter(|| placer.run(&config));
    });
    let big = benchmarks::generate(
        "flat50",
        GeneratorConfig { module_count: 50, seed: 5, ..GeneratorConfig::default() },
    );
    group.bench_with_input(BenchmarkId::new("flat_btree_2000", big.module_count()), &0, |b, _| {
        let config = HbTreePlacerConfig { seed: 3, schedule, ..HbTreePlacerConfig::default() };
        let placer = BTreePlacer::new(&big.netlist, &big.constraints);
        b.iter(|| placer.run(&config));
    });
    group.bench_with_input(BenchmarkId::new("seqpair_2000", circuit.module_count()), &0, |b, _| {
        let config = SeqPairPlacerConfig { seed: 3, schedule, ..SeqPairPlacerConfig::default() };
        let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        b.iter(|| placer.run(&config));
    });
    // Same run with a live recording collector: the gap to `seqpair_2000` is
    // the *enabled* telemetry overhead (the disabled overhead is the default
    // `run` path above, which every other datapoint already measures).
    group.bench_with_input(
        BenchmarkId::new("seqpair_2000_traced", circuit.module_count()),
        &0,
        |b, _| {
            let config =
                SeqPairPlacerConfig { seed: 3, schedule, ..SeqPairPlacerConfig::default() };
            let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
            b.iter(|| {
                let telemetry = Telemetry::with_collector(Arc::new(RecordingCollector::new()));
                placer.run_traced(&config, &telemetry)
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_contour_place,
    bench_pack_btree,
    bench_delta_eval,
    bench_engine_moves
);
criterion_main!(benches);
