//! Experiment E8 — packing-engine scaling: sequence-pair constraint-graph vs
//! FAST-SP (weighted LCS) vs B*-tree contour packing.
//!
//! Supports the complexity discussion of Section II (the placement
//! construction is the inner loop of every annealing placer, so its scaling
//! governs the whole exploration).

use apls_bench::{random_dims, random_permutation};
use apls_btree::{pack_btree, BStarTree};
use apls_seqpair::pack::{pack_constraint_graph, pack_lcs};
use apls_seqpair::SequencePair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    for &n in &[20usize, 50, 100, 200] {
        let dims = random_dims(n, 7);
        let alpha = random_permutation(n, 11);
        let beta = random_permutation(n, 13);
        let sp = SequencePair::from_sequences(alpha, beta).expect("same module set");
        let tree = BStarTree::balanced(&random_permutation(n, 17));

        group.bench_with_input(BenchmarkId::new("seqpair_constraint_graph", n), &n, |b, _| {
            b.iter(|| pack_constraint_graph(&sp, &dims));
        });
        group.bench_with_input(BenchmarkId::new("seqpair_fast_sp_lcs", n), &n, |b, _| {
            b.iter(|| pack_lcs(&sp, &dims));
        });
        group.bench_with_input(BenchmarkId::new("btree_contour", n), &n, |b, _| {
            b.iter(|| pack_btree(&tree, &dims));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
