//! Hierarchical pipeline benchmarks: the pure-enumeration configuration
//! (the deterministic placer's engine) against the hybrid configuration with
//! the B*-tree annealing sub-solver.
//!
//! The recorded area/runtime comparison lives in `BENCH_hier.json` at the
//! repository root: every PR that touches the hierarchical pipeline re-runs
//! this bench and refreshes the comparison so regressions are visible in
//! review.

use apls_circuit::benchmarks;
use apls_shapefn::hier::{BTreeAnnealSolver, HierOptions, HierPlacer};
use apls_shapefn::{DeterministicPlacer, ShapeModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hier_configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier");
    group.sample_size(10);
    for name in ["miller_opamp_fig6", "folded_cascode"] {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        group.bench_with_input(BenchmarkId::new("deterministic", name), &0, |b, _| {
            b.iter(|| DeterministicPlacer::new(&circuit).run(ShapeModel::Enhanced));
        });
        group.bench_with_input(BenchmarkId::new("pure", name), &0, |b, _| {
            b.iter(|| HierPlacer::new(&circuit).run());
        });
        group.bench_with_input(BenchmarkId::new("hybrid_fast", name), &0, |b, _| {
            let options = HierOptions::default().with_seed(7).with_fast_schedule(true);
            b.iter(|| {
                HierPlacer::new(&circuit)
                    .with_options(options.clone())
                    .with_sub_solver(Box::new(BTreeAnnealSolver))
                    .run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hier_configurations);
criterion_main!(benches);
