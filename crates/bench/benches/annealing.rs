//! Cost of the annealing placers (bounded move budgets so the bench stays
//! short): symmetric-feasible sequence-pair annealing vs hierarchical HB*-tree
//! annealing on the same circuits.

use apls_anneal::Schedule;
use apls_btree::{HbTreePlacer, HbTreePlacerConfig};
use apls_circuit::benchmarks;
use apls_seqpair::{SeqPairPlacer, SeqPairPlacerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_annealers(c: &mut Criterion) {
    let mut group = c.benchmark_group("annealing_1000_moves");
    group.sample_size(10);
    let schedule = Schedule::geometric(1000.0, 1.0, 0.9, 20).with_max_moves(1000);

    for circuit in
        [benchmarks::comparator_v2(), benchmarks::miller_v2(), benchmarks::folded_cascode()]
    {
        let n = circuit.module_count();
        let sp_config = SeqPairPlacerConfig { seed: 3, schedule, ..SeqPairPlacerConfig::default() };
        let hb_config = HbTreePlacerConfig { seed: 3, schedule, ..HbTreePlacerConfig::default() };

        group.bench_with_input(BenchmarkId::new("seqpair_sf", n), &n, |b, _| {
            let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
            b.iter(|| placer.run(&sp_config));
        });
        group.bench_with_input(BenchmarkId::new("hbtree", n), &n, |b, _| {
            let placer = HbTreePlacer::new(&circuit);
            b.iter(|| placer.run(&hb_config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_annealers);
criterion_main!(benches);
