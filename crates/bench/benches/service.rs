//! Throughput and saturation of the placement service: a 16-job batch of
//! small fast jobs round-tripped through TCP at 1, 4, and one-per-core
//! workers (distinct seeds, cache disabled — the full solve path), the
//! cache-hit fast path, the same 16-job batch under both serve modes
//! (`service_saturation`), and the cache-hit round trip with 64–4096 idle
//! connections held open against the server (`service_held_open`) — the
//! event-loop reactor holds them all in one thread, the legacy mode pays a
//! parked handler thread each. Divide batch times by 16 for the per-job
//! cost; jobs/sec is its inverse.

use apls_portfolio::PortfolioEngine;
use apls_service::{
    JobSpec, JournalConfig, PlacementService, ServeMode, ServiceClient, ServiceConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BATCH: usize = 16;

fn spec_with_seed(seed: u64) -> JobSpec {
    JobSpec::bundled("miller_opamp_fig6")
        .with_seed(seed)
        .with_restarts(1)
        .with_engines([PortfolioEngine::SequencePair])
        .with_fast(true)
}

/// Round-trips exactly `BATCH` jobs through the service over `connections`
/// parallel client connections (the remainder spreads over the first
/// connections, so the per-job arithmetic in `BENCH_service.json` stays
/// honest on core counts that do not divide `BATCH`).
fn run_batch(addr: SocketAddr, connections: usize, seeds: &AtomicU64) {
    std::thread::scope(|scope| {
        for i in 0..connections {
            let share = BATCH / connections + usize::from(i < BATCH % connections);
            scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connects");
                for _ in 0..share {
                    let seed = seeds.fetch_add(1, Ordering::Relaxed);
                    let response = client.place(&spec_with_seed(seed)).expect("round-trips");
                    assert!(response.is_ok(), "{:?}", response.error);
                }
            });
        }
    });
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("service_{BATCH}_jobs"));
    group.sample_size(4);
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut worker_counts = vec![1usize, 4, auto];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    // fresh seeds per job so every request takes the full solve path
    let seeds = AtomicU64::new(1);
    for workers in worker_counts {
        let service = PlacementService::start(ServiceConfig {
            workers,
            queue_capacity: BATCH * 2,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let addr = service.local_addr();
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| run_batch(addr, workers.min(BATCH), &seeds));
        });
        service.shutdown();
        service.join();
    }
    group.finish();
}

fn bench_cache_hit_path(c: &mut Criterion) {
    // The durability tax on the fastest path: a journaled cache hit appends
    // (and fsyncs, per policy) an enqueue + complete record pair before
    // answering. `round_trip` is the everything-off baseline; the journal
    // variants price per-record fsync against 5ms group commit, and the
    // flight-recorder variant prices the always-on telemetry ring that is
    // the default in production (gated in CI alongside `round_trip`).
    let journal_dir =
        std::env::temp_dir().join(format!("apls-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("temp dir");
    let variants: [(&str, Option<JournalConfig>, usize); 4] = [
        ("round_trip", None, 0),
        ("round_trip_flight_recorder", None, apls_service::DEFAULT_FLIGHT_RECORDER_CAPACITY),
        (
            "round_trip_journal_fsync_each",
            Some(JournalConfig::new(journal_dir.join("fsync_each.jsonl"))),
            0,
        ),
        (
            "round_trip_journal_batched_5ms",
            Some(
                JournalConfig::new(journal_dir.join("batched.jsonl"))
                    .with_batched_sync(Duration::from_millis(5)),
            ),
            0,
        ),
    ];
    let mut group = c.benchmark_group("service_cache_hit");
    group.sample_size(8);
    for (name, journal, flight_recorder) in variants {
        let service = PlacementService::start(ServiceConfig {
            journal,
            flight_recorder,
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
        let spec = spec_with_seed(0xCAFE);
        // prime the cache once; every timed request is then a pure cache hit
        assert!(!client.place(&spec).expect("round-trips").cache_hit);
        group.bench_function(name, |b| {
            b.iter(|| {
                let response = client.place(&spec).expect("round-trips");
                assert!(response.cache_hit);
            });
        });
        service.shutdown();
        service.join();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&journal_dir);
}

/// Jobs/sec at saturation under each serve mode: the same 16-job batch over
/// 4 concurrent connections, cache off, so every request runs the full
/// solve path through either the reactor or a handler thread per
/// connection. `16 / (ns_per_iter * 1e-9)` is the sustained jobs/sec.
fn bench_mode_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_saturation");
    group.sample_size(4);
    let seeds = AtomicU64::new(0x5EED_0000);
    for mode in [ServeMode::EventLoop, ServeMode::LegacyThreads] {
        let service = PlacementService::start(ServiceConfig {
            mode,
            workers: 2,
            queue_capacity: BATCH * 2,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let addr = service.local_addr();
        group.bench_with_input(BenchmarkId::new(mode.as_str(), 4), &4usize, |b, &connections| {
            b.iter(|| run_batch(addr, connections, &seeds));
        });
        service.shutdown();
        service.join();
    }
    group.finish();
}

/// Cache-hit round-trip latency while N idle connections are held open
/// against the server. The event-loop reactor keeps every idle socket as a
/// registered fd in one thread (the curve runs to 4096); legacy-threads
/// parks one handler thread per connection, so its curve stops at 1024.
fn bench_held_open_connections(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_held_open");
    group.sample_size(8);
    let curves: [(ServeMode, &[usize]); 2] = [
        (ServeMode::EventLoop, &[64, 256, 1024, 4096]),
        (ServeMode::LegacyThreads, &[64, 256, 1024]),
    ];
    for (mode, counts) in curves {
        for &held in counts {
            let service = PlacementService::start(ServiceConfig {
                mode,
                max_connections: 8192,
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let addr = service.local_addr();
            let idle: Vec<TcpStream> =
                (0..held).map(|_| TcpStream::connect(addr).expect("held connection")).collect();
            let mut client = ServiceClient::connect(addr).expect("connects");
            let spec = spec_with_seed(0xBEEF);
            // prime once; every timed round trip is then a pure cache hit
            assert!(!client.place(&spec).expect("round-trips").cache_hit);
            group.bench_with_input(BenchmarkId::new(mode.as_str(), held), &held, |b, _| {
                b.iter(|| {
                    let response = client.place(&spec).expect("round-trips");
                    assert!(response.cache_hit);
                });
            });
            // close the idle sockets before shutdown so every parked legacy
            // handler sees EOF and joins
            drop(idle);
            service.shutdown();
            service.join();
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_service_throughput,
    bench_cache_hit_path,
    bench_mode_saturation,
    bench_held_open_connections
);
criterion_main!(benches);
