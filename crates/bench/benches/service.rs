//! Throughput of the placement service: a 16-job batch of small fast jobs
//! round-tripped through TCP at 1, 4, and one-per-core workers (distinct
//! seeds, cache disabled — the full solve path), plus the cache-hit
//! fast path for comparison. Divide the reported time per iteration by 16
//! for the per-job cost; jobs/sec is its inverse.

use apls_portfolio::PortfolioEngine;
use apls_service::{JobSpec, JournalConfig, PlacementService, ServiceClient, ServiceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BATCH: usize = 16;

fn spec_with_seed(seed: u64) -> JobSpec {
    JobSpec::bundled("miller_opamp_fig6")
        .with_seed(seed)
        .with_restarts(1)
        .with_engines([PortfolioEngine::SequencePair])
        .with_fast(true)
}

/// Round-trips exactly `BATCH` jobs through the service over `connections`
/// parallel client connections (the remainder spreads over the first
/// connections, so the per-job arithmetic in `BENCH_service.json` stays
/// honest on core counts that do not divide `BATCH`).
fn run_batch(addr: SocketAddr, connections: usize, seeds: &AtomicU64) {
    std::thread::scope(|scope| {
        for i in 0..connections {
            let share = BATCH / connections + usize::from(i < BATCH % connections);
            scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connects");
                for _ in 0..share {
                    let seed = seeds.fetch_add(1, Ordering::Relaxed);
                    let response = client.place(&spec_with_seed(seed)).expect("round-trips");
                    assert!(response.is_ok(), "{:?}", response.error);
                }
            });
        }
    });
}

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("service_{BATCH}_jobs"));
    group.sample_size(4);
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut worker_counts = vec![1usize, 4, auto];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    // fresh seeds per job so every request takes the full solve path
    let seeds = AtomicU64::new(1);
    for workers in worker_counts {
        let service = PlacementService::start(ServiceConfig {
            workers,
            queue_capacity: BATCH * 2,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let addr = service.local_addr();
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| run_batch(addr, workers.min(BATCH), &seeds));
        });
        service.shutdown();
        service.join();
    }
    group.finish();
}

fn bench_cache_hit_path(c: &mut Criterion) {
    // The durability tax on the fastest path: a journaled cache hit appends
    // (and fsyncs, per policy) an enqueue + complete record pair before
    // answering. `round_trip` is the journal-off baseline; the journal
    // variants price per-record fsync against 5ms group commit.
    let journal_dir =
        std::env::temp_dir().join(format!("apls-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("temp dir");
    let variants: [(&str, Option<JournalConfig>); 3] = [
        ("round_trip", None),
        (
            "round_trip_journal_fsync_each",
            Some(JournalConfig::new(journal_dir.join("fsync_each.jsonl"))),
        ),
        (
            "round_trip_journal_batched_5ms",
            Some(
                JournalConfig::new(journal_dir.join("batched.jsonl"))
                    .with_batched_sync(Duration::from_millis(5)),
            ),
        ),
    ];
    let mut group = c.benchmark_group("service_cache_hit");
    group.sample_size(8);
    for (name, journal) in variants {
        let service =
            PlacementService::start(ServiceConfig { journal, ..ServiceConfig::default() })
                .expect("service starts");
        let mut client = ServiceClient::connect(service.local_addr()).expect("connects");
        let spec = spec_with_seed(0xCAFE);
        // prime the cache once; every timed request is then a pure cache hit
        assert!(!client.place(&spec).expect("round-trips").cache_hit);
        group.bench_function(name, |b| {
            b.iter(|| {
                let response = client.place(&spec).expect("round-trips");
                assert!(response.cache_hit);
            });
        });
        service.shutdown();
        service.join();
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&journal_dir);
}

criterion_group!(benches, bench_service_throughput, bench_cache_hit_path);
criterion_main!(benches);
