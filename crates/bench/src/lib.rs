//! Shared helpers for the benchmark harness.
//!
//! The actual experiments live in the report binaries (`src/bin/*.rs`, one per
//! table or figure of the paper — see DESIGN.md §4) and in the Criterion
//! benches (`benches/*.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apls_circuit::ModuleId;
use apls_geometry::Dims;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` pseudo-random module footprints with analog-like spread
/// (log-uniform edges between 10 and 300 dbu), reproducibly from a seed.
#[must_use]
pub fn random_dims(n: usize, seed: u64) -> Vec<Dims> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let e = |rng: &mut StdRng| {
                let v: f64 = rng.gen_range((10f64).ln()..(300f64).ln());
                v.exp().round() as i64
            };
            Dims::new(e(&mut rng), e(&mut rng))
        })
        .collect()
}

/// Dense module ids `0..n`, the convention used by all engines.
#[must_use]
pub fn module_ids(n: usize) -> Vec<ModuleId> {
    (0..n).map(ModuleId::from_index).collect()
}

/// Generates a random permutation of `0..n` module ids.
#[must_use]
pub fn random_permutation(n: usize, seed: u64) -> Vec<ModuleId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = module_ids(n);
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dims_are_reproducible_and_in_range() {
        let a = random_dims(50, 3);
        let b = random_dims(50, 3);
        assert_eq!(a, b);
        for d in &a {
            assert!(d.w >= 10 && d.w <= 300);
            assert!(d.h >= 10 && d.h <= 300);
        }
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let mut p = random_permutation(40, 9);
        p.sort();
        assert_eq!(p, module_ids(40));
    }
}
