//! Experiment E2 — regenerates **Fig. 1** of the paper: the symmetric-feasible
//! sequence-pair `(EBAFCDG, EBCDFAG)` and its exactly symmetric placement of
//! the group `γ = {(C, D), (B, G), A, F}`.
//!
//! ```text
//! cargo run -p apls-bench --bin fig1 --release
//! ```

use apls_circuit::benchmarks::fig1_circuit;
use apls_seqpair::place::SymmetricPlacer;
use apls_seqpair::symmetry::is_symmetric_feasible;
use apls_seqpair::SequencePair;

fn main() {
    let (circuit, ids) = fig1_circuit();
    let names = ["A", "B", "C", "D", "E", "F", "G"];
    let by_name = |c: char| ids[names.iter().position(|&s| s == c.to_string()).unwrap()];
    let alpha: Vec<_> = "EBAFCDG".chars().map(by_name).collect();
    let beta: Vec<_> = "EBCDFAG".chars().map(by_name).collect();
    let sp = SequencePair::from_sequences(alpha, beta).expect("valid permutations");
    let group = &circuit.constraints.symmetry_groups()[0];

    println!("Fig. 1 — sequence-pair (EBAFCDG, EBCDFAG)");
    println!("symmetric-feasible (property (1)): {}", is_symmetric_feasible(&sp, group));

    let placement = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints).place(&sp);
    let metrics = placement.metrics(&circuit.netlist);
    println!("\ncell placements (dbu):");
    for (name, &id) in names.iter().zip(&ids) {
        println!("  {name}: {}", placement.rect_of(id));
    }
    println!(
        "\nbounding box {}x{}, overlap {}, symmetry error {}",
        metrics.width,
        metrics.height,
        metrics.overlap_area,
        placement.symmetry_error(&circuit.constraints)
    );

    // crude ASCII rendering of the floorplan (1 char ≈ 10 dbu)
    let scale = 10;
    let w = (metrics.width / scale + 1) as usize;
    let h = (metrics.height / scale + 1) as usize;
    let mut grid = vec![vec![b'.'; w]; h];
    for (name, &id) in names.iter().zip(&ids) {
        let r = placement.rect_of(id);
        for y in (r.y_min / scale)..(r.y_max / scale).max(r.y_min / scale + 1) {
            for x in (r.x_min / scale)..(r.x_max / scale).max(r.x_min / scale + 1) {
                grid[y as usize][x as usize] = name.as_bytes()[0];
            }
        }
    }
    println!();
    for row in grid.iter().rev() {
        println!("{}", String::from_utf8_lossy(row));
    }
}
