//! Experiment E5 — regenerates **Fig. 7** of the paper: an enhanced shape
//! addition whose result is `w_imp` narrower than the plain bounding-box
//! addition because the second operand interleaves with the first operand's
//! outline.
//!
//! ```text
//! cargo run -p apls-bench --bin fig7 --release
//! ```

use apls_circuit::ModuleId;
use apls_geometry::Dims;
use apls_shapefn::{EnhancedShapeFunction, ShapeFunction};

fn id(i: usize) -> ModuleId {
    ModuleId::from_index(i)
}

fn main() {
    // first operand: a wide low base with a narrow tall tower -> an L-shaped
    // outline with a concavity at the top right
    let dims = vec![
        Dims::new(40, 12), // base
        Dims::new(16, 30), // tower
        Dims::new(20, 14), // the module added in the second operand
    ];
    let base = EnhancedShapeFunction::for_module(id(0), &dims, false);
    let tower = EnhancedShapeFunction::for_module(id(1), &dims, false);
    let operand1 = base.add(&tower, &dims);
    let operand2 = EnhancedShapeFunction::for_module(id(2), &dims, false);

    let op1_best = operand1.min_area_shape().expect("non-empty");
    println!("operand 1 (w1, h1) = ({}, {})", op1_best.dims().w, op1_best.dims().h);
    println!("operand 2 (w2, h2) = ({}, {})", dims[2].w, dims[2].h);

    // regular (bounding-box) addition
    let rsf1 = ShapeFunction::from_dims([op1_best.dims()]);
    let rsf2 = ShapeFunction::from_dims([dims[2]]);
    let rsf_sum = rsf1.add_horizontal(&rsf2).min_area_shape().expect("non-empty");
    println!("\nregular shape addition     : ({}, {})", rsf_sum.dims.w, rsf_sum.dims.h);

    // enhanced addition
    let esf_sum = operand1.add(&operand2, &dims);
    let best_width = esf_sum
        .shapes()
        .iter()
        .map(|s| s.dims())
        .filter(|d| d.h <= rsf_sum.dims.h)
        .min_by_key(|d| d.w)
        .expect("an interleaved candidate exists");
    println!("enhanced shape addition    : ({}, {})", best_width.w, best_width.h);
    println!(
        "width improvement w_imp    : {} dbu ({:.1} % of the bounding-box width)",
        rsf_sum.dims.w - best_width.w,
        100.0 * (rsf_sum.dims.w - best_width.w) as f64 / rsf_sum.dims.w as f64
    );

    println!("\nfull enhanced shape function of the sum (width, height):");
    for s in esf_sum.shapes() {
        println!("  ({:>4}, {:>4})", s.dims().w, s.dims().h);
    }
}
