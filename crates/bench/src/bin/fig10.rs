//! Experiment E7 — regenerates **Fig. 10** of the paper: electrical-only vs
//! layout-aware sizing of the fully-differential folded-cascode amplifier.
//!
//! ```text
//! cargo run -p apls-bench --bin fig10 --release
//! ```

use apls_layoutaware::model::Specs;
use apls_layoutaware::sizing::{SizingConfig, SizingMode, SizingOptimizer};

fn main() {
    let specs = Specs::default();
    println!("Fig. 10 — layout-aware sizing of the folded-cascode amplifier");
    println!(
        "specs: gain >= {} dB, GBW >= {} MHz, PM >= {} deg, power <= {} mW",
        specs.min_gain_db,
        specs.min_gbw_hz / 1e6,
        specs.min_phase_margin_deg,
        specs.max_power_w * 1e3
    );
    let optimizer = SizingOptimizer::new(specs);

    let mut rows = Vec::new();
    for (label, mode) in [
        ("(a) electrical-only sizing", SizingMode::ElectricalOnly),
        ("(b) layout-aware sizing", SizingMode::LayoutAware),
    ] {
        let result = optimizer.run(&SizingConfig { mode, iterations: 4000, seed: 2009 });
        println!("\n{label}");
        println!(
            "  layout outline          : {:.1} x {:.1} um (area {:.0} um^2, aspect ratio {:.2})",
            result.layout.width_um(),
            result.layout.height_um(),
            result.layout.area_um2(),
            result.layout.aspect_ratio()
        );
        println!(
            "  believed (pre-layout)   : gain {:.1} dB, GBW {:.0} MHz, PM {:.1} deg, power {:.2} mW -> specs met: {}",
            result.pre_layout.gain_db,
            result.pre_layout.gbw_hz / 1e6,
            result.pre_layout.phase_margin_deg,
            result.pre_layout.power_w * 1e3,
            result.specs_met_pre_layout
        );
        println!(
            "  actual (post-layout)    : gain {:.1} dB, GBW {:.0} MHz, PM {:.1} deg, power {:.2} mW -> specs met: {}",
            result.post_layout.gain_db,
            result.post_layout.gbw_hz / 1e6,
            result.post_layout.phase_margin_deg,
            result.post_layout.power_w * 1e3,
            result.specs_met_post_layout
        );
        println!(
            "  extraction share of CPU : {:.1} % of {:.0} ms (paper reports ~17 %)",
            result.extraction_fraction() * 100.0,
            result.total_time.as_secs_f64() * 1e3
        );
        rows.push((label, result));
    }

    let a = &rows[0].1;
    let b = &rows[1].1;
    println!("\nsummary (paper: (a) 195.8 x 358.8 um failing specs, (b) 189.6 x 193.05 um meeting all specs):");
    println!(
        "  electrical-only : {:.1} x {:.1} um, post-layout specs met: {}",
        a.layout.width_um(),
        a.layout.height_um(),
        a.specs_met_post_layout
    );
    println!(
        "  layout-aware    : {:.1} x {:.1} um, post-layout specs met: {}",
        b.layout.width_um(),
        b.layout.height_um(),
        b.specs_met_post_layout
    );
}
