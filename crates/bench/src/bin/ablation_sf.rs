//! Experiment E9 — ablation: restricting the sequence-pair annealer to
//! symmetric-feasible encodings (the paper's approach, Section II) vs letting
//! it roam freely and only penalising asymmetry in the cost function.
//!
//! ```text
//! cargo run -p apls-bench --bin ablation_sf --release
//! ```

use apls_circuit::benchmarks;
use apls_seqpair::{SeqPairPlacer, SeqPairPlacerConfig, SymmetryMode};
use std::time::Instant;

fn main() {
    println!("E9 — symmetric-feasible move set vs symmetry penalty (sequence-pair annealing)");
    println!(
        "{:<16} {:>6} | {:>14} {:>12} {:>9} | {:>14} {:>12} {:>9}",
        "circuit",
        "mods",
        "S-F area use",
        "S-F sym err",
        "S-F time",
        "pen area use",
        "pen sym err",
        "pen time"
    );
    for circuit in
        [benchmarks::comparator_v2(), benchmarks::miller_v2(), benchmarks::folded_cascode()]
    {
        let placer = SeqPairPlacer::new(&circuit.netlist, &circuit.constraints);
        let mut row = Vec::new();
        for mode in [SymmetryMode::Exact, SymmetryMode::Penalty { weight: 50.0 }] {
            let config = SeqPairPlacerConfig {
                seed: 11,
                symmetry_mode: mode,
                ..SeqPairPlacerConfig::for_netlist(&circuit.netlist)
            };
            let start = Instant::now();
            let result = placer.run(&config);
            row.push((result, start.elapsed()));
        }
        let (sf, sf_t) = &row[0];
        let (pen, pen_t) = &row[1];
        println!(
            "{:<16} {:>6} | {:>13.1}% {:>12} {:>8.2}s | {:>13.1}% {:>12} {:>8.2}s",
            circuit.name,
            circuit.module_count(),
            sf.metrics.area_usage * 100.0,
            sf.symmetry_error,
            sf_t.as_secs_f64(),
            pen.metrics.area_usage * 100.0,
            pen.symmetry_error,
            pen_t.as_secs_f64(),
        );
    }
    println!(
        "\nThe S-F move set guarantees a symmetry error of 0 by construction; the penalty\n\
         formulation leaves a residual error and wastes moves on infeasible encodings,\n\
         which is the argument Section II makes for exploring only S-F codes."
    );
}
