//! Experiment E1 — regenerates **Table I** of the paper: enhanced (ESF) vs
//! regular (RSF) shape functions on the six benchmark circuits.
//!
//! ```text
//! cargo run -p apls-bench --bin table1 --release
//! ```

use apls_circuit::benchmarks;
use apls_shapefn::{DeterministicPlacer, ShapeModel};

fn main() {
    println!("Table I — enhanced (ESF) vs regular (RSF) shape functions");
    println!(
        "{:<16} {:>5} | {:>14} {:>10} | {:>14} {:>10} | {:>12} {:>10}",
        "circuit",
        "mods",
        "ESF area usage",
        "ESF time",
        "RSF area usage",
        "RSF time",
        "improvement",
        "time ratio"
    );
    println!("{}", "-".repeat(112));

    let mut improvements = Vec::new();
    let mut time_ratios = Vec::new();
    for circuit in benchmarks::table1_circuits() {
        let placer = DeterministicPlacer::new(&circuit);
        let esf = placer.run(ShapeModel::Enhanced);
        let rsf = placer.run(ShapeModel::Regular);
        let improvement = (rsf.area_usage - esf.area_usage) * 100.0;
        let time_ratio = esf.runtime.as_secs_f64() / rsf.runtime.as_secs_f64().max(1e-9);
        improvements.push(improvement);
        time_ratios.push(time_ratio);
        println!(
            "{:<16} {:>5} | {:>13.2}% {:>9.2}s | {:>13.2}% {:>9.2}s | {:>11.2}% {:>9.1}x",
            circuit.name,
            circuit.module_count(),
            esf.area_usage * 100.0,
            esf.runtime.as_secs_f64(),
            rsf.area_usage * 100.0,
            rsf.runtime.as_secs_f64(),
            improvement,
            time_ratio,
        );
    }
    println!("{}", "-".repeat(112));
    println!(
        "average area improvement: {:.2} percentage points (paper: 4.4 %), average ESF/RSF time ratio: {:.1}x (paper: ~10x)",
        improvements.iter().sum::<f64>() / improvements.len() as f64,
        time_ratios.iter().sum::<f64>() / time_ratios.len() as f64,
    );
}
