//! Experiment E6 — regenerates **Fig. 8** of the paper: the enhanced (ESF) and
//! regular (RSF) shape functions of the `lnamixbias` circuit plotted as
//! (width, height) staircases.
//!
//! ```text
//! cargo run -p apls-bench --bin fig8 --release
//! ```

use apls_circuit::benchmarks;
use apls_shapefn::{DeterministicPlacer, PlacerOptions, ShapeModel};

fn main() {
    let circuit = benchmarks::lnamixbias();
    println!(
        "Fig. 8 — root shape functions of '{}' ({} modules)",
        circuit.name,
        circuit.module_count()
    );
    let placer = DeterministicPlacer::new(&circuit)
        .with_options(PlacerOptions { max_shapes: 32, ..PlacerOptions::default() });

    for model in [ShapeModel::Enhanced, ShapeModel::Regular] {
        let result = placer.run(model);
        println!(
            "\n{:?} shape function ({} shapes, min area usage {:.2} %, runtime {:.2} s):",
            model,
            result.staircase.len(),
            result.area_usage * 100.0,
            result.runtime.as_secs_f64()
        );
        println!("{:>10} {:>10}", "width", "height");
        for (w, h) in &result.staircase {
            println!("{w:>10} {h:>10}");
        }
    }
    println!(
        "\nAs in the paper's figure, the ESF staircase lies below/left of the RSF\n\
         staircase: for any width budget the enhanced model realises a lower height."
    );
}
