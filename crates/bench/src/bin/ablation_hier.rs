//! Experiment E10 — ablation: hierarchical HB*-tree placement (symmetry
//! islands + common-centroid patterns, Section III) vs flat B*-tree placement
//! without constraint handling.
//!
//! ```text
//! cargo run -p apls-bench --bin ablation_hier --release
//! ```

use apls_btree::{BTreePlacer, HbTreePlacer, HbTreePlacerConfig};
use apls_circuit::benchmarks;
use std::time::Instant;

fn main() {
    println!("E10 — hierarchical HB*-tree vs flat B*-tree placement");
    println!(
        "{:<16} {:>6} | {:>14} {:>11} {:>9} | {:>14} {:>11} {:>9}",
        "circuit",
        "mods",
        "HB area use",
        "HB sym err",
        "HB time",
        "flat area use",
        "flat sym err",
        "flat time"
    );
    for circuit in [
        benchmarks::comparator_v2(),
        benchmarks::miller_v2(),
        benchmarks::folded_cascode(),
        benchmarks::buffer(),
    ] {
        let config = HbTreePlacerConfig { seed: 13, ..HbTreePlacerConfig::for_circuit(&circuit) };
        let t0 = Instant::now();
        let hierarchical = HbTreePlacer::new(&circuit).run(&config);
        let t_hier = t0.elapsed();
        let t1 = Instant::now();
        let flat = BTreePlacer::new(&circuit.netlist, &circuit.constraints).run(&config);
        let t_flat = t1.elapsed();
        println!(
            "{:<16} {:>6} | {:>13.1}% {:>11} {:>8.2}s | {:>13.1}% {:>11} {:>8.2}s",
            circuit.name,
            circuit.module_count(),
            hierarchical.metrics.area_usage * 100.0,
            hierarchical.symmetry_error,
            t_hier.as_secs_f64(),
            flat.metrics.area_usage * 100.0,
            flat.symmetry_error,
            t_flat.as_secs_f64(),
        );
    }
    println!(
        "\nThe flat placer optimises area without respecting the analog constraints, so it\n\
         usually reports a slightly lower area usage but a large symmetry error; the\n\
         hierarchical placer keeps every group exactly mirrored (error 0), which is the\n\
         trade Section III's hierarchical framework is designed to win."
    );
}
