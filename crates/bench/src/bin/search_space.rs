//! Experiments E3 + E4 — the search-space numbers quoted in Sections II and
//! IV of the paper:
//!
//! * the symmetric-feasible counting lemma `(n!)² / Π (2p_k + s_k)!`,
//!   cross-checked against brute-force enumeration for small `n` and evaluated
//!   for the Fig. 1 configuration (35,280 of 25,401,600 sequence-pairs);
//! * the B*-tree solution-space size `n!·Catalan(n)` (57,657,600 placements
//!   for 8 modules).
//!
//! ```text
//! cargo run -p apls-bench --bin search_space --release
//! ```

use apls_btree::counting as btree_counting;
use apls_circuit::{ModuleId, SymmetryGroup};
use apls_seqpair::counting as sp_counting;

fn id(i: usize) -> ModuleId {
    ModuleId::from_index(i)
}

fn main() {
    println!("Section II — symmetric-feasible sequence-pair counting lemma");
    println!(
        "{:>3} {:>22} {:>22} {:>22} {:>12}",
        "n", "total (n!)^2", "lemma bound", "brute force", "reduction"
    );
    // small configurations with one symmetry group of 1 pair (+ optionally one
    // self-symmetric cell), brute-forced for cross-checking
    for n in 3..=6u64 {
        let group = if n % 2 == 0 {
            SymmetryGroup::new("g").with_pair(id(0), id(1)).with_self_symmetric(id(2))
        } else {
            SymmetryGroup::new("g").with_pair(id(0), id(1))
        };
        let spec: Vec<(u64, u64)> =
            vec![(group.pair_count() as u64, group.self_symmetric_count() as u64)];
        let modules: Vec<ModuleId> = (0..n as usize).map(id).collect();
        let total = sp_counting::total_sequence_pairs(n);
        let bound = sp_counting::sf_upper_bound(n, &spec);
        let brute = sp_counting::brute_force_sf_count(&modules, &group);
        println!(
            "{:>3} {:>22} {:>22} {:>22} {:>11.2}%",
            n,
            total as u64,
            bound.round() as u64,
            brute,
            sp_counting::reduction_percentage(n, &spec)
        );
    }
    // the Fig. 1 configuration (closed form only; the brute force would be
    // 25.4 M x 25.4 M pair evaluations)
    let total = sp_counting::total_sequence_pairs(7) as u64;
    let bound = sp_counting::sf_upper_bound(7, &[(2, 2)]).round() as u64;
    println!(
        "{:>3} {:>22} {:>22} {:>22} {:>11.2}%   <- Fig. 1 configuration (paper: 35,280 / 25,401,600 = 99.86 %)",
        7,
        total,
        bound,
        "-",
        sp_counting::reduction_percentage(7, &[(2, 2)])
    );

    println!("\nSection IV — number of B*-tree placements (n! * Catalan(n))");
    println!("{:>3} {:>22} {:>22}", "n", "closed form", "enumerated");
    for n in 1..=10u64 {
        let closed = btree_counting::btree_count(n).expect("no overflow for n <= 10");
        let enumerated = if n <= 6 {
            btree_counting::enumerate_tree_count(n as usize).to_string()
        } else {
            "-".to_string()
        };
        let marker = if n == 8 { "   <- value quoted in the paper (57,657,600)" } else { "" };
        println!("{:>3} {:>22} {:>22}{marker}", n, closed, enumerated);
    }
}
