//! Simulated-annealing B*-tree placers.
//!
//! Two placers are provided:
//!
//! * [`HbTreePlacer`] — the hierarchical placer of Section III: the annealer
//!   perturbs the HB*-tree (one sub-circuit at a time) and every candidate is
//!   packed bottom-up with symmetry islands and common-centroid patterns, so
//!   the constraints hold exactly at every step;
//! * [`BTreePlacer`] — a flat B*-tree placer without hierarchy or constraint
//!   handling (symmetry enters the cost only as a penalty). It serves as the
//!   baseline of the hierarchy ablation (experiment E10).

use crate::hbtree::{HbPackScratch, HbUndoLog};
use crate::pack::{pack_btree_into, PackScratch, PackedBTree};
use crate::tree::TreeUndoLog;
use crate::{pack_btree, BStarTree, HbTree};
use apls_anneal::{AnnealState, AnnealStats, Annealer, Schedule};
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::{ConstraintSet, DeltaCost, ModuleId, Netlist, Placement, PlacementMetrics};
use apls_geometry::{BoundingBox, Orientation};
use apls_telemetry::Telemetry;
use rand::RngCore;

/// Configuration shared by the B*-tree placers.
#[derive(Debug, Clone)]
pub struct HbTreePlacerConfig {
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Weight of the wirelength term relative to the area term.
    pub wirelength_weight: f64,
}

impl Default for HbTreePlacerConfig {
    fn default() -> Self {
        HbTreePlacerConfig {
            seed: 1,
            schedule: Schedule::for_problem_size(32),
            wirelength_weight: 0.5,
        }
    }
}

impl HbTreePlacerConfig {
    /// A configuration scaled to the circuit size.
    #[must_use]
    pub fn for_circuit(circuit: &BenchmarkCircuit) -> Self {
        HbTreePlacerConfig {
            schedule: Schedule::for_problem_size(circuit.module_count()),
            ..HbTreePlacerConfig::default()
        }
    }

    /// A fast configuration for tests and smoke runs.
    #[must_use]
    pub fn fast(seed: u64) -> Self {
        HbTreePlacerConfig { seed, schedule: Schedule::fast(), ..HbTreePlacerConfig::default() }
    }
}

/// Alias: the flat placer shares the configuration type.
pub type BTreePlacerConfig = HbTreePlacerConfig;

/// Result of a B*-tree placement run.
#[derive(Debug, Clone)]
pub struct HbTreeResult {
    /// The best placement found.
    pub placement: Placement,
    /// Metrics of that placement.
    pub metrics: PlacementMetrics,
    /// Largest symmetry deviation of the placement (doubled dbu; 0 for the
    /// hierarchical placer).
    pub symmetry_error: i64,
    /// Annealing statistics.
    pub stats: AnnealStats,
}

/// Hierarchical HB*-tree annealing placer.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct HbTreePlacer<'a> {
    circuit: &'a BenchmarkCircuit,
}

impl<'a> HbTreePlacer<'a> {
    /// Creates a placer for a benchmark circuit.
    #[must_use]
    pub fn new(circuit: &'a BenchmarkCircuit) -> Self {
        HbTreePlacer { circuit }
    }

    /// Runs the annealing placement.
    #[must_use]
    pub fn run(&self, config: &HbTreePlacerConfig) -> HbTreeResult {
        self.run_traced(config, &Telemetry::disabled())
    }

    /// [`HbTreePlacer::run`] with telemetry (observe-only; results are
    /// bit-identical whatever collector is installed).
    #[must_use]
    pub fn run_traced(&self, config: &HbTreePlacerConfig, telemetry: &Telemetry) -> HbTreeResult {
        let initial =
            HbTree::new(&self.circuit.netlist, &self.circuit.hierarchy, &self.circuit.constraints);
        let module_count = initial.module_count();
        let mut state = HbState {
            tree: initial,
            undo: HbUndoLog::default(),
            #[cfg(debug_assertions)]
            check: None,
            best: None,
            delta: DeltaCost::new(self.circuit.netlist.adjacency(), module_count),
            scratch: HbPackScratch::new(),
            placement: Placement::with_capacity(module_count),
            wirelength_weight: config.wirelength_weight,
        };
        let stats =
            Annealer::with_seed(config.seed).run_traced(&mut state, &config.schedule, telemetry);
        let best_tree = state.best.map(|(t, _)| t).unwrap_or(state.tree);
        let placement = best_tree.pack();
        let metrics = placement.metrics(&self.circuit.netlist);
        let symmetry_error = placement.symmetry_error(&self.circuit.constraints);
        HbTreeResult { placement, metrics, symmetry_error, stats }
    }
}

/// The HB*-tree annealing state on the zero-allocation hot path: packing goes
/// through reusable scratch buffers, the cost skips the O(n²) overlap scan
/// (HB*-tree packings are overlap-free by construction; `debug_assertions`
/// builds still verify it), rejected moves are undone via the undo log instead
/// of restoring a deep clone, and `commit` receives the already-evaluated cost
/// from the driver so accepted moves never pack twice.
struct HbState {
    tree: HbTree,
    undo: HbUndoLog,
    /// Clone-based reference for the undo log, kept only in debug builds.
    #[cfg(debug_assertions)]
    check: Option<HbTree>,
    best: Option<(HbTree, f64)>,
    delta: DeltaCost,
    scratch: HbPackScratch,
    placement: Placement,
    wirelength_weight: f64,
}

impl AnnealState for HbState {
    fn cost(&mut self) -> f64 {
        self.tree.pack_into(&mut self.scratch, &mut self.placement);
        debug_assert!(self.placement.is_complete());
        #[cfg(debug_assertions)]
        {
            let rects: Vec<apls_geometry::Rect> = self.placement.rects().collect();
            debug_assert_eq!(
                apls_geometry::total_overlap_area(&rects),
                0,
                "HB*-tree packing produced overlapping modules"
            );
        }
        // `Placement::hot_cost` semantics with the wirelength term evaluated
        // through `DeltaCost::sweep_hpwl`: identical per-net fold, so the
        // cost is bit-identical to `wirelength_with`. A repack shifts most
        // coordinates, so the cache-diffing `resync` path loses to the plain
        // sweep here (~1.43 ms vs ~1.09 ms per 2000 moves at 10 modules,
        // 7.2 ms vs 6.0 ms at 50) — the sweep is the measured winner.
        let mut bb = BoundingBox::new();
        for r in self.placement.rects() {
            bb.include_rect(&r);
        }
        let placement = &self.placement;
        let wirelength = self.delta.sweep_hpwl(|m| placement.get(m).map(|pm| pm.rect));
        bb.area() as f64 + self.wirelength_weight * wirelength
    }

    fn propose(&mut self, rng: &mut dyn RngCore) {
        #[cfg(debug_assertions)]
        {
            self.check = Some(self.tree.clone());
        }
        self.tree.perturb_logged(rng, &mut self.undo);
    }

    fn rollback(&mut self) {
        self.tree.undo(&mut self.undo);
        #[cfg(debug_assertions)]
        if let Some(prev) = self.check.take() {
            debug_assert!(
                self.tree == prev,
                "undo-log rollback diverged from the clone-based reference"
            );
        }
    }

    fn commit(&mut self, accepted_cost: f64) {
        let better = match &self.best {
            Some((_, c)) => accepted_cost < *c,
            None => true,
        };
        if better {
            self.best = Some((self.tree.clone(), accepted_cost));
        }
    }

    fn move_kind(&self) -> &'static str {
        self.undo.move_kind()
    }
}

/// Flat (non-hierarchical) B*-tree placer used as the ablation baseline.
///
/// Symmetry constraints are *not* enforced structurally; the reported
/// [`HbTreeResult::symmetry_error`] shows how asymmetric the unconstrained
/// optimum is, which is the point of experiment E10.
#[derive(Debug, Clone)]
pub struct BTreePlacer<'a> {
    netlist: &'a Netlist,
    constraints: &'a ConstraintSet,
}

impl<'a> BTreePlacer<'a> {
    /// Creates a flat placer for a netlist (constraints are only used for
    /// reporting the symmetry error).
    #[must_use]
    pub fn new(netlist: &'a Netlist, constraints: &'a ConstraintSet) -> Self {
        BTreePlacer { netlist, constraints }
    }

    /// Runs the annealing placement.
    #[must_use]
    pub fn run(&self, config: &BTreePlacerConfig) -> HbTreeResult {
        self.run_traced(config, &Telemetry::disabled())
    }

    /// [`BTreePlacer::run`] with telemetry (observe-only; results are
    /// bit-identical whatever collector is installed).
    #[must_use]
    pub fn run_traced(&self, config: &BTreePlacerConfig, telemetry: &Telemetry) -> HbTreeResult {
        let modules: Vec<ModuleId> = self.netlist.module_ids().collect();
        let rotatable: Vec<bool> =
            self.netlist.modules().map(|(_, m)| m.rotation_allowed()).collect();
        let mut state = FlatState {
            tree: BStarTree::balanced(&modules),
            undo: TreeUndoLog::default(),
            #[cfg(debug_assertions)]
            check: None,
            best: None,
            dims: self.netlist.default_dims(),
            delta: DeltaCost::new(self.netlist.adjacency(), modules.len()),
            rotatable,
            scratch: PackScratch::new(),
            packed: PackedBTree::new(),
            wirelength_weight: config.wirelength_weight,
        };
        let stats =
            Annealer::with_seed(config.seed).run_traced(&mut state, &config.schedule, telemetry);
        let best_tree = state.best.map(|(t, _)| t).unwrap_or(state.tree);
        let placement = flat_placement(self.netlist, &best_tree);
        let metrics = placement.metrics(self.netlist);
        let symmetry_error = placement.symmetry_error(self.constraints);
        HbTreeResult { placement, metrics, symmetry_error, stats }
    }
}

fn flat_placement(netlist: &Netlist, tree: &BStarTree) -> Placement {
    let packed = pack_btree(tree, &netlist.default_dims());
    let mut placement = Placement::new(netlist);
    for (i, &(m, r)) in packed.rects().iter().enumerate() {
        let orientation = if packed.rotated()[i] { Orientation::R90 } else { Orientation::R0 };
        placement.place(m, r, orientation, 0);
    }
    placement
}

/// The flat B*-tree annealing state on the zero-allocation hot path: one
/// `pack_btree_into` per proposal straight into reusable buffers, wirelength
/// over the CSR pin adjacency with no intermediate placement, O(1) undo-log
/// rollback, and a driver-supplied cost in `commit` (no second pack). The
/// B*-tree packing anchors its bounding box at the origin, so the packed
/// width/height are exactly the metrics bounding box of the equivalent
/// placement.
struct FlatState {
    tree: BStarTree,
    undo: TreeUndoLog,
    /// Clone-based reference for the undo log, kept only in debug builds.
    #[cfg(debug_assertions)]
    check: Option<BStarTree>,
    best: Option<(BStarTree, f64)>,
    dims: Vec<apls_geometry::Dims>,
    delta: DeltaCost,
    rotatable: Vec<bool>,
    scratch: PackScratch,
    packed: PackedBTree,
    wirelength_weight: f64,
}

impl AnnealState for FlatState {
    fn cost(&mut self) -> f64 {
        pack_btree_into(&mut self.scratch, &self.tree, &self.dims, &mut self.packed);
        // Wirelength through `DeltaCost::sweep_hpwl`: a B*-tree repack shifts
        // most downstream coordinates, so the per-module diff of `resync`
        // costs more than it saves (measured ~1.43 ms vs ~1.09 ms per 2000
        // moves at 10 modules and 7.2 ms vs 6.0 ms at 50). The sweep folds
        // the same per-net terms in the same order, so the cost stays
        // bit-identical either way — only the speed differs.
        let packed = &self.packed;
        let wirelength = self.delta.sweep_hpwl(|m| packed.rect_of(m));
        self.packed.area() as f64 + self.wirelength_weight * wirelength
    }

    fn propose(&mut self, rng: &mut dyn RngCore) {
        #[cfg(debug_assertions)]
        {
            self.check = Some(self.tree.clone());
        }
        let rotatable = &self.rotatable;
        self.tree.perturb_logged(rng, |m| rotatable[m.index()], &mut self.undo);
    }

    fn rollback(&mut self) {
        self.tree.undo(&mut self.undo);
        #[cfg(debug_assertions)]
        if let Some(prev) = self.check.take() {
            debug_assert!(
                self.tree == prev,
                "undo-log rollback diverged from the clone-based reference"
            );
        }
    }

    fn commit(&mut self, accepted_cost: f64) {
        let better = match &self.best {
            Some((_, c)) => accepted_cost < *c,
            None => true,
        };
        if better {
            self.best = Some((self.tree.clone(), accepted_cost));
        }
    }

    fn move_kind(&self) -> &'static str {
        self.undo.move_kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks::{self, miller_opamp_fig6};

    #[test]
    fn hierarchical_placer_is_legal_and_exactly_constrained() {
        let circuit = miller_opamp_fig6();
        let result = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(2));
        assert!(result.placement.is_complete());
        assert_eq!(result.metrics.overlap_area, 0);
        assert_eq!(result.symmetry_error, 0);
        assert!(result.stats.moves.attempted > 0);
    }

    #[test]
    fn hierarchical_placer_improves_over_the_initial_tree() {
        let circuit = benchmarks::comparator_v2();
        let result = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(3));
        assert!(result.stats.best_cost <= result.stats.initial_cost);
    }

    #[test]
    fn flat_placer_is_legal_but_not_symmetric_in_general() {
        let circuit = miller_opamp_fig6();
        let result = BTreePlacer::new(&circuit.netlist, &circuit.constraints)
            .run(&BTreePlacerConfig::fast(4));
        assert!(result.placement.is_complete());
        assert_eq!(result.metrics.overlap_area, 0);
        // no structural guarantee; just check the error is reported
        assert!(result.symmetry_error >= 0);
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let circuit = benchmarks::comparator_v2();
        let a = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(11));
        let b = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(11));
        assert_eq!(a.metrics.bounding_area, b.metrics.bounding_area);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn miller_v2_benchmark_places_with_exact_constraints() {
        let circuit = benchmarks::miller_v2();
        let result = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(5));
        assert_eq!(result.metrics.overlap_area, 0);
        assert_eq!(result.symmetry_error, 0);
        assert!(result.metrics.area_usage >= 1.0);
    }
}
