//! Simulated-annealing B*-tree placers.
//!
//! Two placers are provided:
//!
//! * [`HbTreePlacer`] — the hierarchical placer of Section III: the annealer
//!   perturbs the HB*-tree (one sub-circuit at a time) and every candidate is
//!   packed bottom-up with symmetry islands and common-centroid patterns, so
//!   the constraints hold exactly at every step;
//! * [`BTreePlacer`] — a flat B*-tree placer without hierarchy or constraint
//!   handling (symmetry enters the cost only as a penalty). It serves as the
//!   baseline of the hierarchy ablation (experiment E10).

use crate::{pack_btree, BStarTree, HbTree};
use apls_anneal::{AnnealState, AnnealStats, Annealer, Schedule};
use apls_circuit::benchmarks::BenchmarkCircuit;
use apls_circuit::{ConstraintSet, ModuleId, Netlist, Placement, PlacementMetrics};
use apls_geometry::Orientation;
use rand::RngCore;

/// Configuration shared by the B*-tree placers.
#[derive(Debug, Clone)]
pub struct HbTreePlacerConfig {
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Weight of the wirelength term relative to the area term.
    pub wirelength_weight: f64,
}

impl Default for HbTreePlacerConfig {
    fn default() -> Self {
        HbTreePlacerConfig {
            seed: 1,
            schedule: Schedule::for_problem_size(32),
            wirelength_weight: 0.5,
        }
    }
}

impl HbTreePlacerConfig {
    /// A configuration scaled to the circuit size.
    #[must_use]
    pub fn for_circuit(circuit: &BenchmarkCircuit) -> Self {
        HbTreePlacerConfig {
            schedule: Schedule::for_problem_size(circuit.module_count()),
            ..HbTreePlacerConfig::default()
        }
    }

    /// A fast configuration for tests and smoke runs.
    #[must_use]
    pub fn fast(seed: u64) -> Self {
        HbTreePlacerConfig { seed, schedule: Schedule::fast(), ..HbTreePlacerConfig::default() }
    }
}

/// Alias: the flat placer shares the configuration type.
pub type BTreePlacerConfig = HbTreePlacerConfig;

/// Result of a B*-tree placement run.
#[derive(Debug, Clone)]
pub struct HbTreeResult {
    /// The best placement found.
    pub placement: Placement,
    /// Metrics of that placement.
    pub metrics: PlacementMetrics,
    /// Largest symmetry deviation of the placement (doubled dbu; 0 for the
    /// hierarchical placer).
    pub symmetry_error: i64,
    /// Annealing statistics.
    pub stats: AnnealStats,
}

/// Hierarchical HB*-tree annealing placer.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct HbTreePlacer<'a> {
    circuit: &'a BenchmarkCircuit,
}

impl<'a> HbTreePlacer<'a> {
    /// Creates a placer for a benchmark circuit.
    #[must_use]
    pub fn new(circuit: &'a BenchmarkCircuit) -> Self {
        HbTreePlacer { circuit }
    }

    /// Runs the annealing placement.
    #[must_use]
    pub fn run(&self, config: &HbTreePlacerConfig) -> HbTreeResult {
        let initial =
            HbTree::new(&self.circuit.netlist, &self.circuit.hierarchy, &self.circuit.constraints);
        let mut state = HbState {
            tree: initial,
            backup: None,
            best: None,
            netlist: &self.circuit.netlist,
            wirelength_weight: config.wirelength_weight,
        };
        let stats = Annealer::with_seed(config.seed).run(&mut state, &config.schedule);
        let best_tree = state.best.map(|(t, _)| t).unwrap_or(state.tree);
        let placement = best_tree.pack();
        let metrics = placement.metrics(&self.circuit.netlist);
        let symmetry_error = placement.symmetry_error(&self.circuit.constraints);
        HbTreeResult { placement, metrics, symmetry_error, stats }
    }
}

struct HbState<'a> {
    tree: HbTree,
    backup: Option<HbTree>,
    best: Option<(HbTree, f64)>,
    netlist: &'a Netlist,
    wirelength_weight: f64,
}

impl HbState<'_> {
    fn evaluate(&self, tree: &HbTree) -> f64 {
        let placement = tree.pack();
        let metrics = placement.metrics(self.netlist);
        metrics.bounding_area as f64 + self.wirelength_weight * metrics.wirelength
    }
}

impl AnnealState for HbState<'_> {
    fn cost(&self) -> f64 {
        self.evaluate(&self.tree)
    }

    fn propose(&mut self, rng: &mut dyn RngCore) {
        self.backup = Some(self.tree.clone());
        self.tree.perturb(rng);
    }

    fn rollback(&mut self) {
        if let Some(prev) = self.backup.take() {
            self.tree = prev;
        }
    }

    fn commit(&mut self) {
        let cost = self.evaluate(&self.tree);
        let better = match &self.best {
            Some((_, c)) => cost < *c,
            None => true,
        };
        if better {
            self.best = Some((self.tree.clone(), cost));
        }
    }
}

/// Flat (non-hierarchical) B*-tree placer used as the ablation baseline.
///
/// Symmetry constraints are *not* enforced structurally; the reported
/// [`HbTreeResult::symmetry_error`] shows how asymmetric the unconstrained
/// optimum is, which is the point of experiment E10.
#[derive(Debug, Clone)]
pub struct BTreePlacer<'a> {
    netlist: &'a Netlist,
    constraints: &'a ConstraintSet,
}

impl<'a> BTreePlacer<'a> {
    /// Creates a flat placer for a netlist (constraints are only used for
    /// reporting the symmetry error).
    #[must_use]
    pub fn new(netlist: &'a Netlist, constraints: &'a ConstraintSet) -> Self {
        BTreePlacer { netlist, constraints }
    }

    /// Runs the annealing placement.
    #[must_use]
    pub fn run(&self, config: &BTreePlacerConfig) -> HbTreeResult {
        let modules: Vec<ModuleId> = self.netlist.module_ids().collect();
        let rotatable: Vec<bool> =
            self.netlist.modules().map(|(_, m)| m.rotation_allowed()).collect();
        let mut state = FlatState {
            tree: BStarTree::balanced(&modules),
            backup: None,
            best: None,
            netlist: self.netlist,
            rotatable,
            wirelength_weight: config.wirelength_weight,
        };
        let stats = Annealer::with_seed(config.seed).run(&mut state, &config.schedule);
        let best_tree = state.best.map(|(t, _)| t).unwrap_or(state.tree);
        let placement = flat_placement(self.netlist, &best_tree);
        let metrics = placement.metrics(self.netlist);
        let symmetry_error = placement.symmetry_error(self.constraints);
        HbTreeResult { placement, metrics, symmetry_error, stats }
    }
}

fn flat_placement(netlist: &Netlist, tree: &BStarTree) -> Placement {
    let packed = pack_btree(tree, &netlist.default_dims());
    let mut placement = Placement::new(netlist);
    for &(m, r) in packed.rects() {
        let orientation = if tree.is_rotated(m) { Orientation::R90 } else { Orientation::R0 };
        placement.place(m, r, orientation, 0);
    }
    placement
}

struct FlatState<'a> {
    tree: BStarTree,
    backup: Option<BStarTree>,
    best: Option<(BStarTree, f64)>,
    netlist: &'a Netlist,
    rotatable: Vec<bool>,
    wirelength_weight: f64,
}

impl FlatState<'_> {
    fn evaluate(&self, tree: &BStarTree) -> f64 {
        let placement = flat_placement(self.netlist, tree);
        let metrics = placement.metrics(self.netlist);
        metrics.bounding_area as f64 + self.wirelength_weight * metrics.wirelength
    }
}

impl AnnealState for FlatState<'_> {
    fn cost(&self) -> f64 {
        self.evaluate(&self.tree)
    }

    fn propose(&mut self, rng: &mut dyn RngCore) {
        self.backup = Some(self.tree.clone());
        let rotatable = self.rotatable.clone();
        self.tree.perturb(rng, |m| rotatable[m.index()]);
    }

    fn rollback(&mut self) {
        if let Some(prev) = self.backup.take() {
            self.tree = prev;
        }
    }

    fn commit(&mut self) {
        let cost = self.evaluate(&self.tree);
        let better = match &self.best {
            Some((_, c)) => cost < *c,
            None => true,
        };
        if better {
            self.best = Some((self.tree.clone(), cost));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::benchmarks::{self, miller_opamp_fig6};

    #[test]
    fn hierarchical_placer_is_legal_and_exactly_constrained() {
        let circuit = miller_opamp_fig6();
        let result = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(2));
        assert!(result.placement.is_complete());
        assert_eq!(result.metrics.overlap_area, 0);
        assert_eq!(result.symmetry_error, 0);
        assert!(result.stats.moves_attempted > 0);
    }

    #[test]
    fn hierarchical_placer_improves_over_the_initial_tree() {
        let circuit = benchmarks::comparator_v2();
        let result = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(3));
        assert!(result.stats.best_cost <= result.stats.initial_cost);
    }

    #[test]
    fn flat_placer_is_legal_but_not_symmetric_in_general() {
        let circuit = miller_opamp_fig6();
        let result = BTreePlacer::new(&circuit.netlist, &circuit.constraints)
            .run(&BTreePlacerConfig::fast(4));
        assert!(result.placement.is_complete());
        assert_eq!(result.metrics.overlap_area, 0);
        // no structural guarantee; just check the error is reported
        assert!(result.symmetry_error >= 0);
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let circuit = benchmarks::comparator_v2();
        let a = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(11));
        let b = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(11));
        assert_eq!(a.metrics.bounding_area, b.metrics.bounding_area);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn miller_v2_benchmark_places_with_exact_constraints() {
        let circuit = benchmarks::miller_v2();
        let result = HbTreePlacer::new(&circuit).run(&HbTreePlacerConfig::fast(5));
        assert_eq!(result.metrics.overlap_area, 0);
        assert_eq!(result.symmetry_error, 0);
        assert!(result.metrics.area_usage >= 1.0);
    }
}
