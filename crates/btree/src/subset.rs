//! Flat B*-tree annealing over a module subset.
//!
//! The hierarchical placement pipeline ([`apls-shapefn`'s hier driver])
//! abstracts every hierarchy node as a shape function. Nodes too large to
//! enumerate exhaustively are solved by pinned-seed annealing instead; this
//! module provides the B*-tree flavour of that sub-solver: it anneals a flat
//! B*-tree over *just* the subset modules, using the parent design's global
//! module ids and dimension table directly, so the best tree can be grafted
//! into enclosing shape functions without any id translation.
//!
//! The cost is the packed bounding-box area, optionally biased towards a
//! target aspect ratio — running the annealer once per target produces the
//! width/height spread a shape-function staircase needs.

use crate::pack::{pack_btree_into, PackScratch, PackedBTree};
use crate::tree::TreeUndoLog;
use crate::BStarTree;
use apls_anneal::{AnnealState, AnnealStats, Annealer, Schedule};
use apls_circuit::ModuleId;
use apls_geometry::Dims;
use rand::RngCore;

/// Configuration of one subset annealing run.
#[derive(Debug, Clone)]
pub struct SubsetAnnealConfig {
    /// RNG seed; identical seeds reproduce identical runs.
    pub seed: u64,
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Target aspect ratio `w / h` of the packed subset; `None` optimises
    /// pure area.
    pub aspect_target: Option<f64>,
    /// Cost weight of the aspect-ratio deviation term (scales the area, so
    /// the two terms stay commensurable across subset sizes).
    pub aspect_weight: f64,
}

impl SubsetAnnealConfig {
    /// A pure-area configuration with a schedule scaled to the subset size.
    #[must_use]
    pub fn for_subset_size(seed: u64, n: usize) -> Self {
        SubsetAnnealConfig {
            seed,
            schedule: Schedule::for_problem_size(n),
            aspect_target: None,
            aspect_weight: 0.3,
        }
    }

    /// Selects the short smoke-test schedule (builder style).
    #[must_use]
    pub fn with_fast_schedule(mut self, fast: bool) -> Self {
        if fast {
            self.schedule = Schedule::fast();
        }
        self
    }

    /// Sets the aspect-ratio target (builder style).
    #[must_use]
    pub fn with_aspect_target(mut self, target: f64) -> Self {
        self.aspect_target = Some(target);
        self
    }
}

/// Result of one subset annealing run.
#[derive(Debug, Clone)]
pub struct SubsetAnnealResult {
    /// The best tree found (over the subset modules, global ids).
    pub tree: BStarTree,
    /// Packed footprint of that tree.
    pub dims: Dims,
    /// Annealing statistics.
    pub stats: AnnealStats,
}

/// Anneals a flat B*-tree over `modules`.
///
/// `module_dims` and `rotatable` are indexed by *global* module id (they
/// cover the whole parent design; only the subset entries are read), which is
/// what lets the returned tree feed straight into enhanced shape functions.
///
/// # Panics
///
/// Panics if `modules` is empty or references an id outside the tables.
#[must_use]
pub fn anneal_subset(
    modules: &[ModuleId],
    module_dims: &[Dims],
    rotatable: &[bool],
    config: &SubsetAnnealConfig,
) -> SubsetAnnealResult {
    assert!(!modules.is_empty(), "cannot anneal an empty module subset");
    for &m in modules {
        assert!(m.index() < module_dims.len(), "subset module {m} outside the dimension table");
        assert!(m.index() < rotatable.len(), "subset module {m} outside the rotation table");
    }
    let mut state = SubsetState {
        tree: BStarTree::balanced(modules),
        undo: TreeUndoLog::default(),
        best: None,
        dims: module_dims,
        rotatable,
        scratch: PackScratch::new(),
        packed: PackedBTree::new(),
        aspect_target: config.aspect_target,
        aspect_weight: config.aspect_weight,
    };
    let stats = Annealer::with_seed(config.seed).run(&mut state, &config.schedule);
    let tree = state.best.map(|(t, _)| t).unwrap_or(state.tree);
    pack_btree_into(&mut state.scratch, &tree, module_dims, &mut state.packed);
    SubsetAnnealResult { dims: state.packed.dims(), tree, stats }
}

/// The subset annealing state: same zero-allocation hot path as the flat
/// placer (scratch-buffer packing, undo-log rollback, driver-supplied cost in
/// `commit`), but with an area + aspect-deviation cost instead of
/// area + wirelength.
struct SubsetState<'a> {
    tree: BStarTree,
    undo: TreeUndoLog,
    best: Option<(BStarTree, f64)>,
    dims: &'a [Dims],
    rotatable: &'a [bool],
    scratch: PackScratch,
    packed: PackedBTree,
    aspect_target: Option<f64>,
    aspect_weight: f64,
}

impl AnnealState for SubsetState<'_> {
    fn cost(&mut self) -> f64 {
        pack_btree_into(&mut self.scratch, &self.tree, self.dims, &mut self.packed);
        let area = self.packed.area() as f64;
        match self.aspect_target {
            None => area,
            Some(target) => {
                let ratio = self.packed.width() as f64 / self.packed.height().max(1) as f64;
                area * (1.0 + self.aspect_weight * (ratio / target).ln().abs())
            }
        }
    }

    fn propose(&mut self, rng: &mut dyn RngCore) {
        let rotatable = self.rotatable;
        self.tree.perturb_logged(rng, |m| rotatable[m.index()], &mut self.undo);
    }

    fn rollback(&mut self) {
        self.tree.undo(&mut self.undo);
    }

    fn commit(&mut self, accepted_cost: f64) {
        let better = match &self.best {
            Some((_, c)) => accepted_cost < *c,
            None => true,
        };
        if better {
            self.best = Some((self.tree.clone(), accepted_cost));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_btree;
    use apls_circuit::benchmarks;
    use apls_geometry::total_overlap_area;

    fn setup() -> (Vec<ModuleId>, Vec<Dims>, Vec<bool>) {
        let circuit = benchmarks::folded_cascode();
        let dims = circuit.netlist.default_dims();
        let rotatable = circuit.rotatable_modules();
        let modules: Vec<ModuleId> = (3..11).map(ModuleId::from_index).collect();
        (modules, dims, rotatable)
    }

    #[test]
    fn subset_tree_covers_exactly_the_subset_without_overlap() {
        let (modules, dims, rotatable) = setup();
        let config = SubsetAnnealConfig::for_subset_size(5, modules.len()).with_fast_schedule(true);
        let result = anneal_subset(&modules, &dims, &rotatable, &config);
        let mut tree_modules = result.tree.modules();
        tree_modules.sort_unstable();
        let mut expected = modules.clone();
        expected.sort_unstable();
        assert_eq!(tree_modules, expected);
        let packed = pack_btree(&result.tree, &dims);
        assert_eq!(packed.dims(), result.dims);
        let rects: Vec<_> = packed.rects().iter().map(|(_, r)| *r).collect();
        assert_eq!(total_overlap_area(&rects), 0);
    }

    #[test]
    fn identical_seeds_reproduce_identical_trees() {
        let (modules, dims, rotatable) = setup();
        let config = SubsetAnnealConfig::for_subset_size(9, modules.len()).with_fast_schedule(true);
        let a = anneal_subset(&modules, &dims, &rotatable, &config);
        let b = anneal_subset(&modules, &dims, &rotatable, &config);
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.dims, b.dims);
    }

    #[test]
    fn aspect_targets_pull_the_footprint() {
        let (modules, dims, rotatable) = setup();
        let base = SubsetAnnealConfig::for_subset_size(3, modules.len()).with_fast_schedule(true);
        let wide =
            anneal_subset(&modules, &dims, &rotatable, &base.clone().with_aspect_target(4.0));
        let tall = anneal_subset(&modules, &dims, &rotatable, &base.with_aspect_target(0.25));
        let ar = |d: Dims| d.w as f64 / d.h.max(1) as f64;
        assert!(
            ar(wide.dims) > ar(tall.dims),
            "wide target {:?} should beat tall target {:?}",
            wide.dims,
            tall.dims
        );
    }

    #[test]
    #[should_panic(expected = "empty module subset")]
    fn empty_subset_panics() {
        let _ = anneal_subset(&[], &[], &[], &SubsetAnnealConfig::for_subset_size(1, 1));
    }
}
