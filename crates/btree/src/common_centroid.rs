//! Interdigitated common-centroid pattern generation.
//!
//! A common-centroid group (Fig. 3(a) of the survey) consists of the unit
//! devices of two matched devices A and B. The units are arranged in an
//! interdigitated pattern — e.g. the classic
//!
//! ```text
//! A1 B2 B3 A4
//! B1 A2 A3 B4
//! ```
//!
//! — so that both devices share the same centroid, cancelling linear process
//! gradients. [`generate_pattern`] produces such a pattern deterministically
//! from the group definition; the hierarchical placer treats the result as a
//! rigid block.

use apls_circuit::{CommonCentroidGroup, ModuleId};
use apls_geometry::{Coord, Dims, Rect};

/// A packed common-centroid pattern: unit rectangles plus the block footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonCentroidPattern {
    rects: Vec<(ModuleId, Rect)>,
    dims: Dims,
}

impl CommonCentroidPattern {
    /// Unit rectangles (block-relative coordinates).
    #[must_use]
    pub fn rects(&self) -> &[(ModuleId, Rect)] {
        &self.rects
    }

    /// Footprint of the whole pattern.
    #[must_use]
    pub fn dims(&self) -> Dims {
        self.dims
    }
}

/// Generates an interdigitated pattern for a common-centroid group.
///
/// When the two devices have the same number of units and all units share one
/// footprint, the pattern is exactly common-centroid: units are placed in
/// columns of two, one unit of A and one of B per column, with the vertical
/// order alternating from column to column (`A/B`, `B/A`, `A/B`, …). With an
/// even column count both devices see every row equally often and the
/// centroids coincide exactly.
///
/// Groups with unequal unit counts or mismatched unit footprints still get a
/// legal, compact pattern, but exactness is not guaranteed — the caller can
/// check with [`CommonCentroidGroup::centroid_error`].
#[must_use]
pub fn generate_pattern(group: &CommonCentroidGroup, dims: &[Dims]) -> CommonCentroidPattern {
    let units_a = group.units_a();
    let units_b = group.units_b();
    let all: Vec<ModuleId> = group.members();
    if all.is_empty() {
        return CommonCentroidPattern { rects: Vec::new(), dims: Dims::ZERO };
    }
    let cell_w: Coord = all.iter().map(|m| dims[m.index()].w).max().unwrap_or(0);
    let cell_h: Coord = all.iter().map(|m| dims[m.index()].h).max().unwrap_or(0);

    let mut rects: Vec<(ModuleId, Rect)> = Vec::with_capacity(all.len());
    let paired = units_a.len().min(units_b.len());
    let place_unit = |m: ModuleId, col: usize, row: usize, rects: &mut Vec<(ModuleId, Rect)>| {
        let d = dims[m.index()];
        // centre each unit inside its grid cell so mismatched units stay legal
        let x = col as Coord * cell_w + (cell_w - d.w) / 2;
        let y = row as Coord * cell_h + (cell_h - d.h) / 2;
        rects.push((m, Rect::new(x, y, x + d.w, y + d.h)));
    };

    // paired units: one column per pair, alternating vertical order
    for i in 0..paired {
        let (top, bottom) =
            if i % 2 == 0 { (units_b[i], units_a[i]) } else { (units_a[i], units_b[i]) };
        place_unit(bottom, i, 0, &mut rects);
        place_unit(top, i, 1, &mut rects);
    }
    // leftover units (unequal counts): appended in extra columns, bottom row
    let mut extra_col = paired;
    for &m in units_a.iter().skip(paired).chain(units_b.iter().skip(paired)) {
        place_unit(m, extra_col, 0, &mut rects);
        extra_col += 1;
    }

    let cols = extra_col.max(paired).max(1) as Coord;
    let rows: Coord = if paired > 0 { 2 } else { 1 };
    CommonCentroidPattern { rects, dims: Dims::new(cols * cell_w, rows * cell_h) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_circuit::{Module, Netlist, Placement};
    use apls_geometry::{total_overlap_area, Orientation};

    fn setup(units_a: usize, units_b: usize, dims: Dims) -> (Netlist, CommonCentroidGroup) {
        let mut nl = Netlist::new("cc");
        let a: Vec<ModuleId> =
            (0..units_a).map(|i| nl.add_module(Module::new(format!("A{i}"), dims))).collect();
        let b: Vec<ModuleId> =
            (0..units_b).map(|i| nl.add_module(Module::new(format!("B{i}"), dims))).collect();
        (nl, CommonCentroidGroup::new("g", a, b))
    }

    fn to_placement(nl: &Netlist, pattern: &CommonCentroidPattern) -> Placement {
        let mut p = Placement::new(nl);
        for &(m, r) in pattern.rects() {
            p.place(m, r, Orientation::R0, 0);
        }
        p
    }

    #[test]
    fn two_by_two_pattern_is_exact_and_legal() {
        let (nl, group) = setup(2, 2, Dims::new(20, 10));
        let pattern = generate_pattern(&group, &nl.default_dims());
        let placement = to_placement(&nl, &pattern);
        assert_eq!(group.centroid_error(&placement), 0);
        let rects: Vec<Rect> = pattern.rects().iter().map(|(_, r)| *r).collect();
        assert_eq!(total_overlap_area(&rects), 0);
        assert_eq!(pattern.dims(), Dims::new(40, 20));
    }

    #[test]
    fn four_by_four_pattern_is_exact() {
        let (nl, group) = setup(4, 4, Dims::new(12, 8));
        let pattern = generate_pattern(&group, &nl.default_dims());
        let placement = to_placement(&nl, &pattern);
        assert_eq!(group.centroid_error(&placement), 0);
    }

    #[test]
    fn unequal_counts_are_legal_but_may_be_inexact() {
        let (nl, group) = setup(3, 1, Dims::new(10, 10));
        let pattern = generate_pattern(&group, &nl.default_dims());
        let rects: Vec<Rect> = pattern.rects().iter().map(|(_, r)| *r).collect();
        assert_eq!(rects.len(), 4);
        assert_eq!(total_overlap_area(&rects), 0);
        // all units fit inside the reported footprint
        for (_, r) in pattern.rects() {
            assert!(r.x_max <= pattern.dims().w && r.y_max <= pattern.dims().h);
            assert!(r.x_min >= 0 && r.y_min >= 0);
        }
    }

    #[test]
    fn empty_group_yields_empty_pattern() {
        let group = CommonCentroidGroup::new("empty", vec![], vec![]);
        let pattern = generate_pattern(&group, &[]);
        assert!(pattern.rects().is_empty());
        assert_eq!(pattern.dims(), Dims::ZERO);
    }

    #[test]
    fn pattern_units_all_present_exactly_once() {
        let (nl, group) = setup(2, 2, Dims::new(20, 10));
        let pattern = generate_pattern(&group, &nl.default_dims());
        let mut placed: Vec<ModuleId> = pattern.rects().iter().map(|(m, _)| *m).collect();
        placed.sort();
        let mut expected = group.members();
        expected.sort();
        assert_eq!(placed, expected);
    }
}
