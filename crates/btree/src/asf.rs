//! Automatically symmetric-feasible (ASF) B*-trees: symmetry islands.
//!
//! Reference [16] of the survey formulates the placement of a symmetry group
//! as a *symmetry island*: the group is placed as one connected block that is
//! internally mirror-symmetric about its axis, and the island as a whole is a
//! single node in the surrounding (hierarchical) B*-tree.
//!
//! This module implements the island construction used by the HB*-tree placer:
//!
//! * one **half-tree** — an ordinary [`BStarTree`] over the *representative*
//!   (left) member of every symmetric pair — encodes the right half of the
//!   island; packing it and mirroring every rectangle about the axis yields
//!   the left half, so symmetry holds by construction for any half-tree
//!   (which is what makes the encoding "automatically symmetric-feasible");
//! * self-symmetric modules are stacked in a centre column straddling the
//!   axis.
//!
//! Compared to the full ASF-B*-tree of [16] this keeps the centre column
//! rectangular (self-symmetric modules do not interleave with the halves),
//! a simplification documented in DESIGN.md; pair halves still take arbitrary
//! B*-tree shapes, which is where almost all of the packing freedom lies.

use crate::pack::{pack_btree_into, PackScratch, PackedBTree};
use crate::BStarTree;
use apls_circuit::{ModuleId, SymmetryGroup};
use apls_geometry::{Coord, Dims, Rect};

/// A packed symmetry island: module rectangles (island-relative) plus the
/// island footprint and axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryIsland {
    rects: Vec<(ModuleId, Rect)>,
    dims: Dims,
    /// Doubled x coordinate of the symmetry axis (island-relative).
    axis_x2: Coord,
}

impl Default for SymmetryIsland {
    /// An empty island, ready to be filled by [`AsfBTree::pack_into`].
    fn default() -> Self {
        SymmetryIsland { rects: Vec::new(), dims: Dims::ZERO, axis_x2: 0 }
    }
}

impl SymmetryIsland {
    /// Module rectangles in island-relative coordinates.
    #[must_use]
    pub fn rects(&self) -> &[(ModuleId, Rect)] {
        &self.rects
    }

    /// Island footprint.
    #[must_use]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Doubled x coordinate of the island's symmetry axis.
    #[must_use]
    pub fn axis_x2(&self) -> Coord {
        self.axis_x2
    }
}

/// The ASF encoding of one symmetry group: a half-tree over the pair
/// representatives. Self-symmetric modules need no encoding (their column
/// arrangement is deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsfBTree {
    group: SymmetryGroup,
    half_tree: BStarTree,
}

impl AsfBTree {
    /// Creates the canonical ASF encoding for a group: the half-tree is a left
    /// chain over the pairs' first members.
    #[must_use]
    pub fn new(group: SymmetryGroup) -> Self {
        let representatives: Vec<ModuleId> = group.pairs().iter().map(|&(l, _)| l).collect();
        let half_tree = BStarTree::left_chain(&representatives);
        AsfBTree { group, half_tree }
    }

    /// The symmetry group this encoding places.
    #[must_use]
    pub fn group(&self) -> &SymmetryGroup {
        &self.group
    }

    /// Immutable access to the half-tree (e.g. for inspection in tests).
    #[must_use]
    pub fn half_tree(&self) -> &BStarTree {
        &self.half_tree
    }

    /// Mutable access to the half-tree for perturbation by the annealer.
    ///
    /// Any half-tree shape yields a symmetric island, so perturbing it freely
    /// is safe — this is exactly the "automatically symmetric-feasible"
    /// property.
    pub fn half_tree_mut(&mut self) -> &mut BStarTree {
        &mut self.half_tree
    }

    /// Packs the island for the given module dimension table.
    ///
    /// Geometry: the half-tree packs the pair representatives into the right
    /// half, which is mirrored about the island axis to produce the left half;
    /// self-symmetric modules are stacked *above* the mirrored halves, centred
    /// on the axis, so they do not widen the island.
    ///
    /// Convenience wrapper over [`AsfBTree::pack_into`] that allocates fresh
    /// scratch and output; hot loops should reuse both.
    ///
    /// # Panics
    ///
    /// Panics if a group member's dimensions are missing from `dims`.
    #[must_use]
    pub fn pack(&self, dims: &[Dims]) -> SymmetryIsland {
        let mut scratch = PackScratch::new();
        let mut half = PackedBTree::new();
        let mut out = SymmetryIsland::default();
        self.pack_into(dims, &mut scratch, &mut half, &mut out);
        out
    }

    /// Packs the island into reusable buffers — the allocation-free form of
    /// [`AsfBTree::pack`] (identical output). `scratch` and `half` hold the
    /// half-tree packing state; `out` receives the island.
    ///
    /// # Panics
    ///
    /// Panics if a group member's dimensions are missing from `dims`.
    pub fn pack_into(
        &self,
        dims: &[Dims],
        scratch: &mut PackScratch,
        half: &mut PackedBTree,
        out: &mut SymmetryIsland,
    ) {
        // --- right half: pack the representatives --------------------------
        pack_btree_into(scratch, &self.half_tree, dims, half);
        let half_width = half.width();
        let pair_height = half.height();

        let mut max_self_width: Coord = 0;
        let mut first_self_width: Option<Coord> = None;
        for &s in self.group.self_symmetric() {
            let w = dims[s.index()].w;
            if first_self_width.is_none() {
                first_self_width = Some(w);
            }
            max_self_width = max_self_width.max(w);
        }

        // island width: wide enough for both mirrored halves and the widest
        // self-symmetric module; parity chosen so the axis centres every
        // self-symmetric module exactly ((width - w_s) must be even).
        let mut width = (2 * half_width).max(max_self_width).max(1);
        if let Some(w0) = first_self_width {
            if (width - w0).rem_euclid(2) != 0 {
                width += 1;
            }
        }
        // doubled axis coordinate: the centre line of the island
        let axis_x2 = width;

        out.rects.clear();
        // right half starts at the axis; left half is its mirror image
        let right_offset = width / 2 + (width % 2); // ceil(width / 2)
        for &(l, r) in self.group.pairs() {
            let half_rect = half.rect_of(l).expect("representative is in the half-tree");
            let right_rect = half_rect.translated(apls_geometry::Point::new(right_offset, 0));
            let left_rect = right_rect.mirror_about_vertical_x2(axis_x2);
            out.rects.push((r, right_rect));
            out.rects.push((l, left_rect));
        }
        // self-symmetric modules stacked above the pair region, centred on the
        // axis
        let mut self_y = if self.group.pairs().is_empty() { 0 } else { pair_height };
        for &s in self.group.self_symmetric() {
            let d = dims[s.index()];
            let x = (width - d.w) / 2;
            out.rects.push((s, Rect::new(x, self_y, x + d.w, self_y + d.h)));
            self_y += d.h;
        }

        let height = pair_height.max(self_y).max(1);
        out.dims = Dims::new(width, height);
        out.axis_x2 = axis_x2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_anneal::rng::SeededRng;
    use apls_circuit::{Module, Netlist, Placement};
    use apls_geometry::{total_overlap_area, Orientation};

    fn matched_group(pairs: usize, selfs: usize) -> (Netlist, SymmetryGroup) {
        let mut nl = Netlist::new("asf");
        let mut group = SymmetryGroup::new("g");
        for i in 0..pairs {
            let d = Dims::new(20 + 4 * i as i64, 10 + 2 * i as i64);
            let l = nl.add_module(Module::new(format!("L{i}"), d));
            let r = nl.add_module(Module::new(format!("R{i}"), d));
            group = group.with_pair(l, r);
        }
        for i in 0..selfs {
            let m = nl.add_module(Module::new(format!("S{i}"), Dims::new(30, 14 + 2 * i as i64)));
            group = group.with_self_symmetric(m);
        }
        (nl, group)
    }

    fn island_placement(nl: &Netlist, island: &SymmetryIsland) -> Placement {
        let mut p = Placement::new(nl);
        for &(m, r) in island.rects() {
            p.place(m, r, Orientation::R0, 0);
        }
        p
    }

    #[test]
    fn canonical_island_is_exactly_symmetric_and_legal() {
        let (nl, group) = matched_group(3, 2);
        let asf = AsfBTree::new(group.clone());
        let island = asf.pack(&nl.default_dims());
        let placement = island_placement(&nl, &island);
        assert_eq!(group.axis_error(&placement), 0);
        let rects: Vec<Rect> = island.rects().iter().map(|(_, r)| *r).collect();
        assert_eq!(total_overlap_area(&rects), 0);
        assert_eq!(rects.len(), 8);
    }

    #[test]
    fn every_half_tree_perturbation_stays_symmetric() {
        let (nl, group) = matched_group(4, 1);
        let mut asf = AsfBTree::new(group.clone());
        let dims = nl.default_dims();
        let mut rng = SeededRng::new(77);
        for step in 0..300 {
            asf.half_tree_mut().perturb(&mut rng, |_| true);
            let island = asf.pack(&dims);
            let placement = island_placement(&nl, &island);
            assert_eq!(group.axis_error(&placement), 0, "asymmetric island at step {step}");
            let rects: Vec<Rect> = island.rects().iter().map(|(_, r)| *r).collect();
            assert_eq!(total_overlap_area(&rects), 0, "overlap at step {step}");
        }
    }

    #[test]
    fn island_footprint_covers_all_members() {
        let (nl, group) = matched_group(2, 1);
        let asf = AsfBTree::new(group);
        let island = asf.pack(&nl.default_dims());
        for (_, r) in island.rects() {
            assert!(r.x_min >= 0 && r.y_min >= 0);
            assert!(r.x_max <= island.dims().w);
            assert!(r.y_max <= island.dims().h);
        }
    }

    #[test]
    fn axis_sits_in_the_middle_of_the_island() {
        let (nl, group) = matched_group(2, 0);
        let asf = AsfBTree::new(group);
        let island = asf.pack(&nl.default_dims());
        assert_eq!(island.axis_x2(), island.dims().w);
    }

    #[test]
    fn group_without_pairs_is_a_plain_stack() {
        let (nl, group) = matched_group(0, 3);
        let asf = AsfBTree::new(group.clone());
        let island = asf.pack(&nl.default_dims());
        assert_eq!(island.rects().len(), 3);
        let placement = island_placement(&nl, &island);
        assert_eq!(group.axis_error(&placement), 0);
    }
}
