//! B*-tree, ASF-B*-tree and hierarchical HB*-tree analog placement.
//!
//! This crate implements Section III of the DATE 2009 survey, *Hierarchical
//! placement with layout constraints*:
//!
//! * [`BStarTree`] — the B*-tree topological floorplan representation of Chang
//!   et al. (reference [5] of the survey) with contour-based packing and the
//!   standard perturbation operations (rotate, swap, move);
//! * [`asf`] — *automatically symmetric-feasible* B*-trees: a symmetry group
//!   is packed as a **symmetry island** (one half encoded as a B*-tree, the
//!   other produced by mirroring about the axis, self-symmetric modules
//!   centred on the axis), following the symmetry-island formulation of
//!   reference [16];
//! * [`common_centroid`] — interdigitated unit-device pattern generation for
//!   common-centroid groups (Fig. 3(a) of the survey);
//! * [`hbtree`] — the hierarchical HB*-tree: every sub-circuit of the layout
//!   design hierarchy owns its own B*-tree (or ASF island / common-centroid
//!   pattern, depending on the sub-circuit's constraint); sub-circuits are
//!   packed bottom-up and abstracted as blocks in their parent's tree;
//! * [`counting`] — the size of the B*-tree solution space
//!   (`n! · Catalan(n)`, e.g. 57,657,600 placements for 8 modules as quoted in
//!   Section IV of the paper);
//! * [`anneal`] — simulated-annealing placers: a flat B*-tree placer and the
//!   hierarchical HB*-tree placer (experiment E10 compares them).
//!
//! # Example
//!
//! ```
//! use apls_circuit::benchmarks::miller_opamp_fig6;
//! use apls_btree::{HbTreePlacer, HbTreePlacerConfig};
//!
//! let circuit = miller_opamp_fig6();
//! let placer = HbTreePlacer::new(&circuit);
//! let result = placer.run(&HbTreePlacerConfig::fast(1));
//! assert_eq!(result.metrics.overlap_area, 0);
//! assert_eq!(result.symmetry_error, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod asf;
pub mod common_centroid;
pub mod counting;
pub mod hbtree;
mod pack;
pub mod subset;
mod tree;

pub use anneal::{BTreePlacer, BTreePlacerConfig, HbTreePlacer, HbTreePlacerConfig, HbTreeResult};
pub use hbtree::{HbPackScratch, HbTree, HbUndoLog};
pub use pack::{pack_btree, pack_btree_into, PackScratch, PackedBTree};
pub use subset::{anneal_subset, SubsetAnnealConfig, SubsetAnnealResult};
pub use tree::{BStarTree, TreeUndoLog};
