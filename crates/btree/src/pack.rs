//! Contour-based B*-tree packing.

use crate::tree::Slot;
use crate::BStarTree;
use apls_circuit::ModuleId;
use apls_geometry::{Contour, Coord, Dims, Rect};

/// The packed form of a B*-tree: one rectangle per module plus the floorplan
/// extents.
///
/// Besides the pre-order rectangle list, the packing keeps a dense
/// by-module-index table so [`PackedBTree::rect_of`] is a direct lookup
/// instead of a linear scan, and a parallel rotation-flag list so consumers
/// can recover orientations without re-querying the tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedBTree {
    rects: Vec<(ModuleId, Rect)>,
    /// Rotation flag of `rects[i]`, aligned with `rects`.
    rotated: Vec<bool>,
    /// Direct lookup table indexed by [`ModuleId::index`].
    by_module: Vec<Option<Rect>>,
    width: Coord,
    height: Coord,
}

impl PackedBTree {
    /// Creates an empty packing, ready to be filled by [`pack_btree_into`]
    /// (and reused across calls without reallocating).
    #[must_use]
    pub fn new() -> Self {
        PackedBTree::default()
    }

    /// Rectangles in packing (pre-order) order.
    #[must_use]
    pub fn rects(&self) -> &[(ModuleId, Rect)] {
        &self.rects
    }

    /// Rotation flags aligned with [`PackedBTree::rects`]: `rotated()[i]` is
    /// `true` when `rects()[i]` was packed with the transposed footprint.
    #[must_use]
    pub fn rotated(&self) -> &[bool] {
        &self.rotated
    }

    /// Rectangle of one module, if it was packed. Direct index lookup, O(1).
    #[must_use]
    pub fn rect_of(&self, module: ModuleId) -> Option<Rect> {
        self.by_module.get(module.index()).copied().flatten()
    }

    /// Floorplan width.
    #[must_use]
    pub fn width(&self) -> Coord {
        self.width
    }

    /// Floorplan height.
    #[must_use]
    pub fn height(&self) -> Coord {
        self.height
    }

    /// Bounding-box area of the floorplan.
    #[must_use]
    pub fn area(&self) -> i128 {
        i128::from(self.width) * i128::from(self.height)
    }

    /// Footprint of the floorplan.
    #[must_use]
    pub fn dims(&self) -> Dims {
        Dims::new(self.width, self.height)
    }
}

/// Reusable working storage for [`pack_btree_into`].
///
/// Packing needs a contour and an x-interval table sized to the tree; both
/// grow to their steady-state capacity on the first pack and are reused
/// untouched afterwards, so repeated packing — the annealing hot loop —
/// performs no heap allocation at all.
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    contour: Contour,
    /// `(x_min, x_max)` assigned so far, by arena index (parents are always
    /// packed before their children in pre-order).
    x_of: Vec<(Coord, Coord)>,
}

impl PackScratch {
    /// Creates an empty scratch; buffers are sized lazily by the first pack.
    #[must_use]
    pub fn new() -> Self {
        PackScratch::default()
    }
}

/// Packs a B*-tree against the contour.
///
/// Pre-order traversal: the root is placed at the origin; a left child is
/// placed immediately to the right of its parent (`x = parent.x_max`); a right
/// child is placed at the parent's own x. In both cases the module drops onto
/// the current contour (the lowest y that clears everything already placed in
/// its horizontal span), which is what makes B*-tree packings bottom-left
/// compacted and overlap-free.
///
/// `dims` is indexed by [`ModuleId::index`]; rotated nodes use the transposed
/// footprint.
///
/// Convenience wrapper over [`pack_btree_into`] that allocates fresh scratch
/// and output; hot loops should hold both and call `pack_btree_into` instead.
#[must_use]
pub fn pack_btree(tree: &BStarTree, dims: &[Dims]) -> PackedBTree {
    let mut scratch = PackScratch::new();
    let mut out = PackedBTree::new();
    pack_btree_into(&mut scratch, tree, dims, &mut out);
    out
}

/// Packs a B*-tree into a reusable [`PackedBTree`] using reusable scratch
/// buffers — the allocation-free form of [`pack_btree`] (identical output).
pub fn pack_btree_into(
    scratch: &mut PackScratch,
    tree: &BStarTree,
    dims: &[Dims],
    out: &mut PackedBTree,
) {
    scratch.contour.clear();
    scratch.x_of.clear();
    scratch.x_of.resize(tree.len(), (0, 0));
    out.rects.clear();
    out.rotated.clear();
    out.by_module.clear();
    out.by_module.resize(dims.len(), None);
    out.width = 0;
    out.height = 0;

    let contour = &mut scratch.contour;
    let x_of = &mut scratch.x_of;
    tree.walk_preorder(&mut |arena_idx, module, rotated, slot| {
        let base = dims[module.index()];
        let d = if rotated { base.rotated() } else { base };
        let x = match slot {
            Slot::Root => 0,
            Slot::LeftChildOf(p) => x_of[p].1,
            Slot::RightChildOf(p) => x_of[p].0,
        };
        let y = contour.place(x, d.w, d.h);
        let rect = Rect::new(x, y, x + d.w, y + d.h);
        x_of[arena_idx] = (x, x + d.w);
        out.width = out.width.max(rect.x_max);
        out.height = out.height.max(rect.y_max);
        out.rects.push((module, rect));
        out.rotated.push(rotated);
        out.by_module[module.index()] = Some(rect);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_anneal::rng::SeededRng;
    use apls_geometry::total_overlap_area;

    fn ids(n: usize) -> Vec<ModuleId> {
        (0..n).map(ModuleId::from_index).collect()
    }

    #[test]
    fn left_chain_packs_into_a_row() {
        let tree = BStarTree::left_chain(&ids(3));
        let dims = vec![Dims::new(10, 5), Dims::new(20, 8), Dims::new(5, 3)];
        let packed = pack_btree(&tree, &dims);
        assert_eq!(packed.width(), 35);
        assert_eq!(packed.height(), 8);
        assert_eq!(packed.rect_of(ModuleId::from_index(2)).unwrap().x_min, 30);
        let rects: Vec<Rect> = packed.rects().iter().map(|(_, r)| *r).collect();
        assert_eq!(total_overlap_area(&rects), 0);
    }

    #[test]
    fn right_chain_packs_into_a_column() {
        // build manually: root with a chain of right children
        let mut tree = BStarTree::left_chain(&ids(3));
        // turn the left chain into a right chain by moving nodes
        assert!(tree.move_node(ModuleId::from_index(1), ModuleId::from_index(0), false));
        assert!(tree.move_node(ModuleId::from_index(2), ModuleId::from_index(1), false));
        let dims = vec![Dims::new(10, 5), Dims::new(10, 5), Dims::new(10, 5)];
        let packed = pack_btree(&tree, &dims);
        assert_eq!(packed.width(), 10);
        assert_eq!(packed.height(), 15);
    }

    #[test]
    fn rotation_changes_footprint() {
        let mut tree = BStarTree::left_chain(&ids(1));
        let dims = vec![Dims::new(30, 10)];
        assert_eq!(pack_btree(&tree, &dims).dims(), Dims::new(30, 10));
        tree.rotate_node(ModuleId::from_index(0));
        assert_eq!(pack_btree(&tree, &dims).dims(), Dims::new(10, 30));
    }

    #[test]
    fn random_trees_always_pack_legally() {
        let n = 15;
        let modules = ids(n);
        let dims: Vec<Dims> =
            (0..n).map(|i| Dims::new(5 + (i as i64 * 7) % 40, 5 + (i as i64 * 13) % 30)).collect();
        let mut tree = BStarTree::balanced(&modules);
        let mut rng = SeededRng::new(31);
        let total_area: i128 = dims.iter().map(|d| d.area()).sum();
        for _ in 0..300 {
            tree.perturb(&mut rng, |_| true);
            let packed = pack_btree(&tree, &dims);
            let rects: Vec<Rect> = packed.rects().iter().map(|(_, r)| *r).collect();
            assert_eq!(rects.len(), n);
            assert_eq!(total_overlap_area(&rects), 0);
            assert!(packed.area() >= total_area);
            for (_, r) in packed.rects() {
                assert!(r.x_min >= 0 && r.y_min >= 0);
                assert!(r.x_max <= packed.width() && r.y_max <= packed.height());
            }
        }
    }

    #[test]
    fn reused_scratch_packs_identically_to_the_allocating_path() {
        let n = 12;
        let modules = ids(n);
        let dims: Vec<Dims> =
            (0..n).map(|i| Dims::new(4 + (i as i64 * 5) % 25, 4 + (i as i64 * 11) % 20)).collect();
        let mut tree = BStarTree::balanced(&modules);
        let mut rng = SeededRng::new(77);
        let mut scratch = PackScratch::new();
        let mut reused = PackedBTree::new();
        for _ in 0..200 {
            tree.perturb(&mut rng, |_| true);
            let fresh = pack_btree(&tree, &dims);
            pack_btree_into(&mut scratch, &tree, &dims, &mut reused);
            assert_eq!(fresh, reused);
            // the by-module index agrees with the linear list
            for (i, &(m, r)) in fresh.rects().iter().enumerate() {
                assert_eq!(reused.rect_of(m), Some(r));
                assert_eq!(reused.rotated()[i], fresh.rotated()[i]);
            }
            assert_eq!(reused.rect_of(ModuleId::from_index(n + 5)), None);
        }
    }

    #[test]
    fn empty_tree_packs_to_nothing() {
        let tree = BStarTree::left_chain(&[]);
        let packed = pack_btree(&tree, &[]);
        assert_eq!(packed.width(), 0);
        assert_eq!(packed.height(), 0);
    }
}
