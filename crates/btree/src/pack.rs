//! Contour-based B*-tree packing.

use crate::tree::Slot;
use crate::BStarTree;
use apls_circuit::ModuleId;
use apls_geometry::{Contour, Coord, Dims, Rect};

/// The packed form of a B*-tree: one rectangle per module plus the floorplan
/// extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBTree {
    rects: Vec<(ModuleId, Rect)>,
    width: Coord,
    height: Coord,
}

impl PackedBTree {
    /// Rectangles in packing (pre-order) order.
    #[must_use]
    pub fn rects(&self) -> &[(ModuleId, Rect)] {
        &self.rects
    }

    /// Rectangle of one module, if it was packed.
    #[must_use]
    pub fn rect_of(&self, module: ModuleId) -> Option<Rect> {
        self.rects.iter().find(|(m, _)| *m == module).map(|(_, r)| *r)
    }

    /// Floorplan width.
    #[must_use]
    pub fn width(&self) -> Coord {
        self.width
    }

    /// Floorplan height.
    #[must_use]
    pub fn height(&self) -> Coord {
        self.height
    }

    /// Bounding-box area of the floorplan.
    #[must_use]
    pub fn area(&self) -> i128 {
        i128::from(self.width) * i128::from(self.height)
    }

    /// Footprint of the floorplan.
    #[must_use]
    pub fn dims(&self) -> Dims {
        Dims::new(self.width, self.height)
    }
}

/// Packs a B*-tree against the contour.
///
/// Pre-order traversal: the root is placed at the origin; a left child is
/// placed immediately to the right of its parent (`x = parent.x_max`); a right
/// child is placed at the parent's own x. In both cases the module drops onto
/// the current contour (the lowest y that clears everything already placed in
/// its horizontal span), which is what makes B*-tree packings bottom-left
/// compacted and overlap-free.
///
/// `dims` is indexed by [`ModuleId::index`]; rotated nodes use the transposed
/// footprint.
#[must_use]
pub fn pack_btree(tree: &BStarTree, dims: &[Dims]) -> PackedBTree {
    let mut contour = Contour::new();
    let mut rects: Vec<(ModuleId, Rect)> = Vec::with_capacity(tree.len());
    // x positions assigned so far, by arena index
    let mut x_of: Vec<Option<(Coord, Coord)>> = vec![None; tree.len()]; // (x_min, x_max)
    let mut width = 0;
    let mut height = 0;

    tree.walk_preorder(&mut |arena_idx, module, rotated, slot| {
        let base = dims[module.index()];
        let d = if rotated { base.rotated() } else { base };
        let x = match slot {
            Slot::Root => 0,
            Slot::LeftChildOf(p) => x_of[p].expect("parent packed before child").1,
            Slot::RightChildOf(p) => x_of[p].expect("parent packed before child").0,
        };
        let y = contour.place(x, d.w, d.h);
        let rect = Rect::new(x, y, x + d.w, y + d.h);
        x_of[arena_idx] = Some((x, x + d.w));
        width = width.max(rect.x_max);
        height = height.max(rect.y_max);
        rects.push((module, rect));
    });

    PackedBTree { rects, width, height }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_anneal::rng::SeededRng;
    use apls_geometry::total_overlap_area;

    fn ids(n: usize) -> Vec<ModuleId> {
        (0..n).map(ModuleId::from_index).collect()
    }

    #[test]
    fn left_chain_packs_into_a_row() {
        let tree = BStarTree::left_chain(&ids(3));
        let dims = vec![Dims::new(10, 5), Dims::new(20, 8), Dims::new(5, 3)];
        let packed = pack_btree(&tree, &dims);
        assert_eq!(packed.width(), 35);
        assert_eq!(packed.height(), 8);
        assert_eq!(packed.rect_of(ModuleId::from_index(2)).unwrap().x_min, 30);
        let rects: Vec<Rect> = packed.rects().iter().map(|(_, r)| *r).collect();
        assert_eq!(total_overlap_area(&rects), 0);
    }

    #[test]
    fn right_chain_packs_into_a_column() {
        // build manually: root with a chain of right children
        let mut tree = BStarTree::left_chain(&ids(3));
        // turn the left chain into a right chain by moving nodes
        assert!(tree.move_node(ModuleId::from_index(1), ModuleId::from_index(0), false));
        assert!(tree.move_node(ModuleId::from_index(2), ModuleId::from_index(1), false));
        let dims = vec![Dims::new(10, 5), Dims::new(10, 5), Dims::new(10, 5)];
        let packed = pack_btree(&tree, &dims);
        assert_eq!(packed.width(), 10);
        assert_eq!(packed.height(), 15);
    }

    #[test]
    fn rotation_changes_footprint() {
        let mut tree = BStarTree::left_chain(&ids(1));
        let dims = vec![Dims::new(30, 10)];
        assert_eq!(pack_btree(&tree, &dims).dims(), Dims::new(30, 10));
        tree.rotate_node(ModuleId::from_index(0));
        assert_eq!(pack_btree(&tree, &dims).dims(), Dims::new(10, 30));
    }

    #[test]
    fn random_trees_always_pack_legally() {
        let n = 15;
        let modules = ids(n);
        let dims: Vec<Dims> =
            (0..n).map(|i| Dims::new(5 + (i as i64 * 7) % 40, 5 + (i as i64 * 13) % 30)).collect();
        let mut tree = BStarTree::balanced(&modules);
        let mut rng = SeededRng::new(31);
        let total_area: i128 = dims.iter().map(|d| d.area()).sum();
        for _ in 0..300 {
            tree.perturb(&mut rng, |_| true);
            let packed = pack_btree(&tree, &dims);
            let rects: Vec<Rect> = packed.rects().iter().map(|(_, r)| *r).collect();
            assert_eq!(rects.len(), n);
            assert_eq!(total_overlap_area(&rects), 0);
            assert!(packed.area() >= total_area);
            for (_, r) in packed.rects() {
                assert!(r.x_min >= 0 && r.y_min >= 0);
                assert!(r.x_max <= packed.width() && r.y_max <= packed.height());
            }
        }
    }

    #[test]
    fn empty_tree_packs_to_nothing() {
        let tree = BStarTree::left_chain(&[]);
        let packed = pack_btree(&tree, &[]);
        assert_eq!(packed.width(), 0);
        assert_eq!(packed.height(), 0);
    }
}
