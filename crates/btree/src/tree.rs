//! The B*-tree floorplan representation.

use apls_circuit::ModuleId;
use rand::{Rng, RngCore};

/// One node of a [`BStarTree`], stored in an arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    module: ModuleId,
    /// Whether the module is rotated by 90° in this placement.
    rotated: bool,
    left: Option<usize>,
    right: Option<usize>,
    parent: Option<usize>,
}

/// A B*-tree: an ordered binary tree whose pre-order traversal packs modules
/// left-to-right against a contour.
///
/// The left child of a node is the module placed immediately to its right
/// (`x = parent.x + parent.width`); the right child shares the parent's x
/// coordinate and is placed above it. Any binary tree over the module set maps
/// to a legal (overlap-free), left- and bottom-compacted placement, and any
/// such placement admits a B*-tree — this is the representation's key
/// property.
///
/// The tree is stored as an arena of nodes (index-based links), which keeps
/// the perturbation operations — [`BStarTree::rotate_node`],
/// [`BStarTree::swap_modules`], [`BStarTree::move_node`] — simple and avoids
/// fighting the borrow checker with parent pointers.
///
/// # Example
///
/// ```
/// use apls_btree::BStarTree;
/// use apls_circuit::ModuleId;
///
/// let modules: Vec<ModuleId> = (0..4).map(ModuleId::from_index).collect();
/// let tree = BStarTree::left_chain(&modules);
/// assert_eq!(tree.len(), 4);
/// assert!(tree.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BStarTree {
    nodes: Vec<Node>,
    root: Option<usize>,
}

/// The inverse record of one perturbation, replayed by [`BStarTree::undo`].
///
/// One log undoes exactly one perturbation (the annealing engine guarantees
/// rollbacks only target the most recent proposal), so a state owns a single
/// reusable log: recording overwrites it, undoing consumes it. The embedded
/// swap buffer is reused across moves, which is what makes rollback
/// allocation-free in steady state — O(1) structural work plus the sink-swap
/// chain, instead of a full deep clone of the tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeUndoLog {
    kind: UndoKind,
    /// The module/rotation swaps `move_node` performed while sinking the moved
    /// node to a leaf, in application order (each swap is its own inverse).
    swaps: Vec<(usize, usize)>,
}

impl TreeUndoLog {
    /// Returns `true` when the log holds nothing to undo (the last recorded
    /// perturbation was a no-op, or the log was already consumed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kind == UndoKind::None
    }

    /// Telemetry label of the recorded perturbation's move type.
    #[must_use]
    pub fn move_kind(&self) -> &'static str {
        match self.kind {
            UndoKind::None => "noop",
            UndoKind::Rotate(_) => "rotate",
            UndoKind::Swap(..) => "swap",
            UndoKind::Move { .. } => "move_node",
        }
    }

    pub(crate) fn reset(&mut self) {
        self.kind = UndoKind::None;
        self.swaps.clear();
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum UndoKind {
    /// Nothing to undo.
    #[default]
    None,
    /// The rotation flag of this arena node was toggled.
    Rotate(usize),
    /// The payloads of these two arena nodes were swapped.
    Swap(usize, usize),
    /// A `move_node`: after the sink swaps, the node at arena index `leaf`
    /// was detached from `old_parent` and reattached under `target`,
    /// displacing `displaced` into the leaf's left slot.
    Move {
        leaf: usize,
        old_parent: usize,
        old_as_left: bool,
        target: usize,
        new_as_left: bool,
        displaced: Option<usize>,
    },
}

impl BStarTree {
    /// Builds a degenerate tree where every module is the left child of the
    /// previous one: the packing is a single row.
    #[must_use]
    pub fn left_chain(modules: &[ModuleId]) -> Self {
        let mut tree = BStarTree { nodes: Vec::with_capacity(modules.len()), root: None };
        let mut prev: Option<usize> = None;
        for &m in modules {
            let idx = tree.nodes.len();
            tree.nodes.push(Node {
                module: m,
                rotated: false,
                left: None,
                right: None,
                parent: prev,
            });
            match prev {
                None => tree.root = Some(idx),
                Some(p) => tree.nodes[p].left = Some(idx),
            }
            prev = Some(idx);
        }
        tree
    }

    /// Builds a roughly balanced tree (alternating left/right children), which
    /// packs into a more square-ish initial floorplan than
    /// [`BStarTree::left_chain`].
    #[must_use]
    pub fn balanced(modules: &[ModuleId]) -> Self {
        let mut tree = BStarTree { nodes: Vec::with_capacity(modules.len()), root: None };
        for &m in modules {
            tree.nodes.push(Node {
                module: m,
                rotated: false,
                left: None,
                right: None,
                parent: None,
            });
        }
        if modules.is_empty() {
            return tree;
        }
        tree.root = Some(0);
        for i in 1..modules.len() {
            let parent = (i - 1) / 2;
            tree.nodes[i].parent = Some(parent);
            if i % 2 == 1 {
                tree.nodes[parent].left = Some(i);
            } else {
                tree.nodes[parent].right = Some(i);
            }
        }
        tree
    }

    /// Number of modules in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the tree holds no modules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The modules in pre-order (the packing order).
    #[must_use]
    pub fn preorder(&self) -> Vec<ModuleId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.preorder_visit(self.root, &mut |tree, idx| out.push(tree.nodes[idx].module));
        out
    }

    /// All modules in arena order (insertion order, not packing order).
    #[must_use]
    pub fn modules(&self) -> Vec<ModuleId> {
        self.nodes.iter().map(|n| n.module).collect()
    }

    /// Whether the node holding `module` is rotated.
    #[must_use]
    pub fn is_rotated(&self, module: ModuleId) -> bool {
        self.nodes.iter().find(|n| n.module == module).is_some_and(|n| n.rotated)
    }

    fn preorder_visit<F: FnMut(&BStarTree, usize)>(&self, node: Option<usize>, f: &mut F) {
        let Some(idx) = node else { return };
        f(self, idx);
        self.preorder_visit(self.nodes[idx].left, f);
        self.preorder_visit(self.nodes[idx].right, f);
    }

    /// Internal iteration used by the packer: calls `f(module, rotated,
    /// parent_slot)` in pre-order, where `parent_slot` identifies whether the
    /// node is the root, a left child or a right child, together with the
    /// parent's arena index.
    pub(crate) fn walk_preorder<F: FnMut(usize, ModuleId, bool, Slot)>(&self, f: &mut F) {
        self.walk(self.root, Slot::Root, f);
    }

    fn walk<F: FnMut(usize, ModuleId, bool, Slot)>(
        &self,
        node: Option<usize>,
        slot: Slot,
        f: &mut F,
    ) {
        let Some(idx) = node else { return };
        let n = self.nodes[idx];
        f(idx, n.module, n.rotated, slot);
        self.walk(n.left, Slot::LeftChildOf(idx), f);
        self.walk(n.right, Slot::RightChildOf(idx), f);
    }

    /// Toggles the rotation flag of the node holding `module`.
    ///
    /// Returns `false` when the module is not in the tree.
    pub fn rotate_node(&mut self, module: ModuleId) -> bool {
        for n in &mut self.nodes {
            if n.module == module {
                n.rotated = !n.rotated;
                return true;
            }
        }
        false
    }

    /// Swaps the modules held by two arena nodes (the tree shape is
    /// unchanged).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_modules(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (ma, ra) = (self.nodes[a].module, self.nodes[a].rotated);
        let (mb, rb) = (self.nodes[b].module, self.nodes[b].rotated);
        self.nodes[a].module = mb;
        self.nodes[a].rotated = rb;
        self.nodes[b].module = ma;
        self.nodes[b].rotated = ra;
    }

    /// Removes the node holding `module` from the tree and re-inserts it as a
    /// child of the node currently holding `target_module` (left child if
    /// `as_left_child`, right child otherwise). The moved module is first
    /// sunk to a leaf position by swapping it with a child repeatedly (the
    /// standard B*-tree delete), so the tree shape changes only locally; an
    /// existing child at the insertion point becomes the left child of the
    /// moved node.
    ///
    /// Returns `false` (leaving the tree valid) when either module is missing,
    /// when the two modules are the same, or when the tree has fewer than two
    /// nodes.
    pub fn move_node(
        &mut self,
        module: ModuleId,
        target_module: ModuleId,
        as_left_child: bool,
    ) -> bool {
        let mut log = TreeUndoLog::default();
        self.move_node_logged(module, target_module, as_left_child, &mut log)
    }

    /// [`BStarTree::move_node`] with an undo record: on success `log` holds
    /// the exact inverse of the move for [`BStarTree::undo`]; on failure the
    /// log is left empty.
    pub fn move_node_logged(
        &mut self,
        module: ModuleId,
        target_module: ModuleId,
        as_left_child: bool,
        log: &mut TreeUndoLog,
    ) -> bool {
        log.reset();
        if module == target_module || self.nodes.len() < 2 {
            return false;
        }
        if !self.nodes.iter().any(|n| n.module == module)
            || !self.nodes.iter().any(|n| n.module == target_module)
        {
            return false;
        }
        // 1. sink the module to a leaf by swapping with children
        let mut idx = self.nodes.iter().position(|n| n.module == module).expect("checked above");
        while let Some(child) = self.nodes[idx].left.or(self.nodes[idx].right) {
            self.swap_modules(idx, child);
            log.swaps.push((idx, child));
            idx = child;
        }
        // 2. detach the leaf (it always has a parent: a childless root would
        //    mean a single-node tree, excluded above)
        let parent = self.nodes[idx].parent.expect("leaf of a multi-node tree has a parent");
        let old_as_left = self.nodes[parent].left == Some(idx);
        if old_as_left {
            self.nodes[parent].left = None;
        } else {
            self.nodes[parent].right = None;
        }
        self.nodes[idx].parent = None;
        // 3. attach under the target
        let target =
            self.nodes.iter().position(|n| n.module == target_module).expect("checked above");
        debug_assert_ne!(target, idx, "target module cannot sit on the detached leaf");
        let displaced = if as_left_child {
            self.nodes[target].left.replace(idx)
        } else {
            self.nodes[target].right.replace(idx)
        };
        self.nodes[idx].parent = Some(target);
        if let Some(d) = displaced {
            debug_assert!(self.nodes[idx].left.is_none());
            self.nodes[idx].left = Some(d);
            self.nodes[d].parent = Some(idx);
        }
        log.kind = UndoKind::Move {
            leaf: idx,
            old_parent: parent,
            old_as_left,
            target,
            new_as_left: as_left_child,
            displaced,
        };
        debug_assert!(self.validate().is_ok());
        true
    }

    /// Replays the inverse of the perturbation recorded in `log`, restoring
    /// the tree to its exact pre-perturbation state in O(1) structural work
    /// (plus the sink-swap chain of a move). Consumes the log: a second call
    /// is a no-op.
    pub fn undo(&mut self, log: &mut TreeUndoLog) {
        match log.kind {
            UndoKind::None => {}
            UndoKind::Rotate(idx) => {
                self.nodes[idx].rotated = !self.nodes[idx].rotated;
            }
            UndoKind::Swap(a, b) => {
                self.swap_modules(a, b);
            }
            UndoKind::Move { leaf, old_parent, old_as_left, target, new_as_left, displaced } => {
                // detach the leaf from its new position under `target`
                if new_as_left {
                    self.nodes[target].left = None;
                } else {
                    self.nodes[target].right = None;
                }
                self.nodes[leaf].parent = None;
                // restore the displaced child to its old slot under `target`
                if let Some(d) = displaced {
                    self.nodes[leaf].left = None;
                    if new_as_left {
                        self.nodes[target].left = Some(d);
                    } else {
                        self.nodes[target].right = Some(d);
                    }
                    self.nodes[d].parent = Some(target);
                }
                // reattach the leaf under its old parent
                if old_as_left {
                    self.nodes[old_parent].left = Some(leaf);
                } else {
                    self.nodes[old_parent].right = Some(leaf);
                }
                self.nodes[leaf].parent = Some(old_parent);
                // unwind the sink swaps (each is its own inverse)
                for &(a, b) in log.swaps.iter().rev() {
                    self.swap_modules(a, b);
                }
                debug_assert!(self.validate().is_ok());
            }
        }
        log.reset();
    }

    /// Grafts a copy of `other` into this tree: `other`'s root becomes the
    /// left (or right) child of the node holding `anchor_module`, and the rest
    /// of `other`'s structure — including rotation flags — is preserved.
    ///
    /// Returns `false` (leaving the tree untouched) when the anchor is
    /// missing, the requested child slot is already occupied, `other` is
    /// empty, or the module sets are not disjoint.
    pub fn graft(
        &mut self,
        other: &BStarTree,
        anchor_module: ModuleId,
        as_left_child: bool,
    ) -> bool {
        let Some(anchor) = self.nodes.iter().position(|n| n.module == anchor_module) else {
            return false;
        };
        let Some(other_root) = other.root else {
            return false;
        };
        let slot_occupied = if as_left_child {
            self.nodes[anchor].left.is_some()
        } else {
            self.nodes[anchor].right.is_some()
        };
        if slot_occupied {
            return false;
        }
        let own_modules: std::collections::BTreeSet<ModuleId> =
            self.nodes.iter().map(|n| n.module).collect();
        if other.nodes.iter().any(|n| own_modules.contains(&n.module)) {
            return false;
        }
        let offset = self.nodes.len();
        for n in &other.nodes {
            self.nodes.push(Node {
                module: n.module,
                rotated: n.rotated,
                left: n.left.map(|i| i + offset),
                right: n.right.map(|i| i + offset),
                parent: n.parent.map(|i| i + offset),
            });
        }
        let new_root = other_root + offset;
        self.nodes[new_root].parent = Some(anchor);
        if as_left_child {
            self.nodes[anchor].left = Some(new_root);
        } else {
            self.nodes[anchor].right = Some(new_root);
        }
        debug_assert!(self.validate().is_ok());
        true
    }

    /// Applies one random perturbation: rotate a module, swap two modules, or
    /// move a module elsewhere in the tree.
    ///
    /// `rotatable` decides whether a module may be rotated (modules under
    /// matching constraints usually may not).
    pub fn perturb<F: Fn(ModuleId) -> bool>(&mut self, rng: &mut dyn RngCore, rotatable: F) {
        let mut log = TreeUndoLog::default();
        self.perturb_logged(rng, rotatable, &mut log);
    }

    /// [`BStarTree::perturb`] with an undo record: after the call `log` holds
    /// the exact inverse of whatever was applied (possibly nothing), ready for
    /// [`BStarTree::undo`]. The RNG consumption is identical to `perturb`, so
    /// logged and unlogged runs with the same seed follow the same trajectory.
    pub fn perturb_logged<F: Fn(ModuleId) -> bool>(
        &mut self,
        rng: &mut dyn RngCore,
        rotatable: F,
        log: &mut TreeUndoLog,
    ) {
        log.reset();
        let n = self.nodes.len();
        if n == 0 {
            return;
        }
        match rng.gen_range(0..3u32) {
            0 => {
                let idx = rng.gen_range(0..n);
                let module = self.nodes[idx].module;
                if rotatable(module) {
                    self.nodes[idx].rotated = !self.nodes[idx].rotated;
                    log.kind = UndoKind::Rotate(idx);
                } else if n >= 2 {
                    let j = (idx + 1 + rng.gen_range(0..n - 1)) % n;
                    self.swap_modules(idx, j);
                    log.kind = UndoKind::Swap(idx, j);
                }
            }
            1 => {
                if n >= 2 {
                    let a = rng.gen_range(0..n);
                    let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                    self.swap_modules(a, b);
                    log.kind = UndoKind::Swap(a, b);
                }
            }
            _ => {
                if n >= 2 {
                    let idx = rng.gen_range(0..n);
                    let other = (idx + 1 + rng.gen_range(0..n - 1)) % n;
                    let module = self.nodes[idx].module;
                    let target_module = self.nodes[other].module;
                    let as_left = rng.gen_bool(0.5);
                    self.move_node_logged(module, target_module, as_left, log);
                }
            }
        }
    }

    /// Structural validation: every node reachable exactly once from the root,
    /// parent pointers consistent with child pointers.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return if self.root.is_none() {
                Ok(())
            } else {
                Err("empty arena but a root is set".to_string())
            };
        }
        let Some(root) = self.root else {
            return Err("non-empty arena but no root".to_string());
        };
        let mut visits = vec![0usize; self.nodes.len()];
        self.preorder_visit(Some(root), &mut |_, idx| visits[idx] += 1);
        for (idx, &count) in visits.iter().enumerate() {
            if count == 0 {
                return Err(format!("node {idx} is unreachable from the root"));
            }
            if count > 1 {
                return Err(format!("node {idx} is reachable more than once (cycle)"));
            }
        }
        for (idx, node) in self.nodes.iter().enumerate() {
            for child in [node.left, node.right].into_iter().flatten() {
                if self.nodes[child].parent != Some(idx) {
                    return Err(format!("node {child} has a stale parent pointer"));
                }
            }
        }
        if self.nodes[root].parent.is_some() {
            return Err("root has a parent".to_string());
        }
        Ok(())
    }
}

/// Where a node sits relative to its parent during packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// The tree root (placed at the origin).
    Root,
    /// Left child: placed immediately to the right of the parent.
    LeftChildOf(usize),
    /// Right child: placed directly above the parent (same x).
    RightChildOf(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_anneal::rng::SeededRng;

    fn ids(n: usize) -> Vec<ModuleId> {
        (0..n).map(ModuleId::from_index).collect()
    }

    #[test]
    fn left_chain_preorder_is_insertion_order() {
        let tree = BStarTree::left_chain(&ids(5));
        assert_eq!(tree.preorder(), ids(5));
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn balanced_tree_is_valid_and_complete() {
        let tree = BStarTree::balanced(&ids(10));
        assert!(tree.validate().is_ok());
        let mut pre = tree.preorder();
        pre.sort();
        assert_eq!(pre, ids(10));
    }

    #[test]
    fn empty_tree_is_valid() {
        let tree = BStarTree::left_chain(&[]);
        assert!(tree.is_empty());
        assert!(tree.validate().is_ok());
        assert!(tree.preorder().is_empty());
    }

    #[test]
    fn rotate_toggles_flag() {
        let mut tree = BStarTree::left_chain(&ids(3));
        let m = ModuleId::from_index(1);
        assert!(!tree.is_rotated(m));
        assert!(tree.rotate_node(m));
        assert!(tree.is_rotated(m));
        assert!(tree.rotate_node(m));
        assert!(!tree.is_rotated(m));
        assert!(!tree.rotate_node(ModuleId::from_index(99)));
    }

    #[test]
    fn swap_preserves_structure() {
        let mut tree = BStarTree::balanced(&ids(6));
        tree.swap_modules(0, 5);
        assert!(tree.validate().is_ok());
        let mut pre = tree.preorder();
        pre.sort();
        assert_eq!(pre, ids(6));
    }

    #[test]
    fn move_node_keeps_tree_valid() {
        let mut tree = BStarTree::balanced(&ids(8));
        assert!(tree.move_node(ModuleId::from_index(7), ModuleId::from_index(0), false));
        assert!(tree.validate().is_ok());
        let mut pre = tree.preorder();
        pre.sort();
        assert_eq!(pre, ids(8), "moving a node must not lose modules");
    }

    #[test]
    fn move_node_rejects_degenerate_requests() {
        let mut tree = BStarTree::left_chain(&ids(3));
        assert!(!tree.move_node(ModuleId::from_index(1), ModuleId::from_index(1), true));
        assert!(!tree.move_node(ModuleId::from_index(9), ModuleId::from_index(0), true));
        let mut single = BStarTree::left_chain(&ids(1));
        assert!(!single.move_node(ModuleId::from_index(0), ModuleId::from_index(0), true));
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn random_perturbations_never_corrupt_the_tree() {
        let mut tree = BStarTree::balanced(&ids(12));
        let mut rng = SeededRng::new(99);
        for step in 0..2000 {
            tree.perturb(&mut rng, |_| true);
            assert!(tree.validate().is_ok(), "corrupt tree after step {step}");
            let mut pre = tree.preorder();
            pre.sort();
            assert_eq!(pre, ids(12), "lost module after step {step}");
        }
    }

    #[test]
    fn undo_restores_the_exact_tree_after_any_perturbation() {
        let mut tree = BStarTree::balanced(&ids(12));
        let mut rng = SeededRng::new(123);
        let mut log = TreeUndoLog::default();
        for step in 0..2000 {
            let before = tree.clone();
            tree.perturb_logged(&mut rng, |m| m.index() % 2 == 0, &mut log);
            tree.undo(&mut log);
            assert_eq!(tree, before, "undo mismatch at step {step}");
            assert!(log.is_empty());
            // drift so the next iteration starts from a new shape
            tree.perturb(&mut rng, |_| true);
        }
    }

    #[test]
    fn undo_of_an_explicit_move_restores_structure() {
        let mut tree = BStarTree::balanced(&ids(8));
        let before = tree.clone();
        let mut log = TreeUndoLog::default();
        assert!(tree.move_node_logged(
            ModuleId::from_index(1),
            ModuleId::from_index(6),
            true,
            &mut log
        ));
        assert_ne!(tree, before);
        tree.undo(&mut log);
        assert_eq!(tree, before);
        // a consumed log is a no-op
        tree.undo(&mut log);
        assert_eq!(tree, before);
    }

    #[test]
    fn logged_and_unlogged_perturbations_share_the_rng_trajectory() {
        let mut plain = BStarTree::balanced(&ids(9));
        let mut logged = BStarTree::balanced(&ids(9));
        let mut rng_a = SeededRng::new(7);
        let mut rng_b = SeededRng::new(7);
        let mut log = TreeUndoLog::default();
        for _ in 0..500 {
            plain.perturb(&mut rng_a, |m| m.index() != 3);
            logged.perturb_logged(&mut rng_b, |m| m.index() != 3, &mut log);
        }
        assert_eq!(plain, logged);
    }

    #[test]
    fn perturbations_respect_rotation_predicate() {
        let mut tree = BStarTree::balanced(&ids(6));
        let mut rng = SeededRng::new(5);
        for _ in 0..500 {
            tree.perturb(&mut rng, |_| false);
        }
        for m in ids(6) {
            assert!(!tree.is_rotated(m), "module {m} was rotated despite the predicate");
        }
    }
}
