//! Hierarchical B*-trees (HB*-trees).
//!
//! The HB*-tree of reference [17] models each sub-circuit of the layout design
//! hierarchy with its own floorplan representation and links them through
//! hierarchy nodes: perturbations pick one sub-circuit's tree, and packing
//! proceeds bottom-up, abstracting every packed sub-circuit as a block in its
//! parent.
//!
//! [`HbTree`] follows that structure:
//!
//! * hierarchy nodes tagged with a **symmetry** constraint whose leaves form a
//!   symmetry group are placed as ASF symmetry islands ([`crate::asf`]);
//! * nodes tagged **common-centroid** use the interdigitated pattern generator
//!   ([`crate::common_centroid`]);
//! * all other internal nodes own an ordinary [`BStarTree`] over their
//!   children (modules or sub-circuit blocks).
//!
//! Simplification vs. [17] (documented in DESIGN.md): a packed sub-circuit is
//! abstracted by its bounding rectangle during parent packing, i.e. the
//! rectilinear top contour of a cluster is not exploited. Experiment E10
//! quantifies the impact by comparing against flat (non-hierarchical) B*-tree
//! placement.

use crate::asf::{AsfBTree, SymmetryIsland};
use crate::common_centroid::generate_pattern;
use crate::pack::{pack_btree_into, PackScratch, PackedBTree};
use crate::tree::TreeUndoLog;
use crate::BStarTree;
use apls_circuit::{
    ConstraintKind, ConstraintSet, HierarchyNode, HierarchyNodeId, HierarchyTree, ModuleId,
    Netlist, Placement,
};
use apls_geometry::{Dims, Orientation, Point, Rect};
use rand::{Rng, RngCore};

/// How one hierarchy node is placed.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeKind {
    /// A single module.
    Leaf(ModuleId),
    /// An internal node packed with its own B*-tree over child blocks.
    Tree(BStarTree),
    /// A symmetry island over the node's symmetry group.
    SymmetryIsland(AsfBTree),
    /// A common-centroid pattern over the node's group.
    CommonCentroid(apls_circuit::CommonCentroidGroup),
}

/// The hierarchical B*-tree state explored by the annealing placer.
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks::miller_opamp_fig6;
/// use apls_btree::HbTree;
///
/// let circuit = miller_opamp_fig6();
/// let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
/// let placement = hb.pack();
/// assert!(placement.is_complete());
/// assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HbTree {
    /// One entry per hierarchy node, indexed by `HierarchyNodeId::index`.
    kinds: Vec<NodeKind>,
    /// Children of each hierarchy node (hierarchy node indices).
    children: Vec<Vec<usize>>,
    root: usize,
    /// Default module dimensions, indexed by module id.
    module_dims: Vec<Dims>,
    module_count: usize,
    /// Whether a module may be rotated by the perturbation operators.
    rotatable: Vec<bool>,
    /// Right-pair members per module index (for mirrored orientations).
    mirrored: Vec<bool>,
    /// Hierarchy nodes that own a perturbable tree (ordinary sub-circuit or
    /// symmetry-island half-tree). Node kinds never change during annealing,
    /// so this is computed once instead of per move.
    perturb_candidates: Vec<usize>,
    /// Whether the packing *token* of a hierarchy node may be rotated: only
    /// leaf tokens whose module allows rotation (rotating a sub-circuit block
    /// would transpose its footprint without transposing its contents).
    token_rotatable: Vec<bool>,
}

/// The inverse record of one [`HbTree::perturb_logged`] call: which hierarchy
/// node was perturbed plus the undo log of its tree. Replayed by
/// [`HbTree::undo`] in O(1) instead of deep-cloning the whole hierarchy.
#[derive(Debug, Clone, Default)]
pub struct HbUndoLog {
    node: Option<usize>,
    tree: TreeUndoLog,
}

impl HbUndoLog {
    /// Telemetry label of the recorded perturbation's move type.
    #[must_use]
    pub fn move_kind(&self) -> &'static str {
        if self.node.is_none() {
            "noop"
        } else {
            self.tree.move_kind()
        }
    }
}

/// Reusable working storage for [`HbTree::pack_into`]: per-node sub-placement
/// buffers, the shared token-dimension table, contour/packing scratch, and a
/// cache of the static (leaf and common-centroid) sub-placements, which never
/// change during annealing.
///
/// A scratch belongs to one `HbTree` topology (clones of the same tree
/// included): reusing it across different circuits gives wrong cached
/// placements.
#[derive(Debug, Clone, Default)]
pub struct HbPackScratch {
    /// `(module, rect, rotated)` triples per hierarchy node, block-relative.
    node_rects: Vec<Vec<(ModuleId, Rect, bool)>>,
    /// Footprint of each packed hierarchy node.
    node_dims: Vec<Dims>,
    /// Token dimension table shared by every `pack_btree_into` call (only the
    /// current node's child entries are read, so no clearing is needed).
    token_dims: Vec<Dims>,
    pack: PackScratch,
    packed: PackedBTree,
    island: SymmetryIsland,
    /// Marks leaf/common-centroid nodes whose sub-placement is already
    /// computed; those never change, so they are packed exactly once.
    static_done: Vec<bool>,
}

impl HbPackScratch {
    /// Creates an empty scratch; buffers are sized lazily on the first pack.
    #[must_use]
    pub fn new() -> Self {
        HbPackScratch::default()
    }

    fn ensure(&mut self, node_count: usize) {
        if self.node_rects.len() < node_count {
            self.node_rects.resize_with(node_count, Vec::new);
            self.node_dims.resize(node_count, Dims::ZERO);
            self.token_dims.resize(node_count, Dims::ZERO);
            self.static_done.resize(node_count, false);
        }
    }
}

impl HbTree {
    /// Builds the initial HB*-tree for a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy tree has no root or does not validate against
    /// the netlist.
    #[must_use]
    pub fn new(netlist: &Netlist, hierarchy: &HierarchyTree, constraints: &ConstraintSet) -> Self {
        hierarchy.validate(netlist).expect("hierarchy tree must cover the netlist");
        let root = hierarchy.root().expect("hierarchy has a root").index();
        let module_dims = netlist.default_dims();
        let module_count = netlist.module_count();

        let mut rotatable = vec![false; module_count];
        for (id, module) in netlist.modules() {
            let constrained = !constraints.kinds_for(id).is_empty();
            rotatable[id.index()] = module.rotation_allowed() && !constrained;
        }
        let mut mirrored = vec![false; module_count];
        for g in constraints.symmetry_groups() {
            for &(_, r) in g.pairs() {
                mirrored[r.index()] = true;
            }
        }

        let mut kinds: Vec<NodeKind> = Vec::with_capacity(hierarchy.node_count());
        let mut children: Vec<Vec<usize>> = Vec::with_capacity(hierarchy.node_count());
        for i in 0..hierarchy.node_count() {
            let id = node_id(i);
            children.push(hierarchy.children(id).iter().map(|c| c.index()).collect());
            kinds.push(Self::classify(netlist, hierarchy, constraints, id));
        }

        let perturb_candidates: Vec<usize> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, NodeKind::Tree(_) | NodeKind::SymmetryIsland(_)))
            .map(|(i, _)| i)
            .collect();
        let token_rotatable: Vec<bool> = kinds
            .iter()
            .map(|k| match k {
                NodeKind::Leaf(m) => rotatable[m.index()],
                _ => false,
            })
            .collect();

        HbTree {
            kinds,
            children,
            root,
            module_dims,
            module_count,
            rotatable,
            mirrored,
            perturb_candidates,
            token_rotatable,
        }
    }

    fn classify(
        _netlist: &Netlist,
        hierarchy: &HierarchyTree,
        constraints: &ConstraintSet,
        id: HierarchyNodeId,
    ) -> NodeKind {
        match hierarchy.node(id) {
            HierarchyNode::Leaf { module } => NodeKind::Leaf(*module),
            HierarchyNode::Internal { constraint, .. } => {
                let leaves = hierarchy.leaves_under(id);
                let mut sorted_leaves = leaves.clone();
                sorted_leaves.sort();
                if *constraint == Some(ConstraintKind::Symmetry) {
                    if let Some(group) = constraints.symmetry_groups().iter().find(|g| {
                        let mut members = g.members();
                        members.sort();
                        members == sorted_leaves
                    }) {
                        return NodeKind::SymmetryIsland(AsfBTree::new(group.clone()));
                    }
                }
                if *constraint == Some(ConstraintKind::CommonCentroid) {
                    if let Some(group) = constraints.common_centroid_groups().iter().find(|g| {
                        let mut members = g.members();
                        members.sort();
                        members == sorted_leaves
                    }) {
                        return NodeKind::CommonCentroid(group.clone());
                    }
                }
                // ordinary sub-circuit: B*-tree over the child tokens
                let tokens: Vec<ModuleId> = hierarchy
                    .children(id)
                    .iter()
                    .map(|c| ModuleId::from_index(c.index()))
                    .collect();
                NodeKind::Tree(BStarTree::left_chain(&tokens))
            }
        }
    }

    /// Number of placeable modules covered by the tree.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.module_count
    }

    /// Applies one random perturbation: pick a sub-circuit that owns a tree
    /// (ordinary node or symmetry-island half-tree) and perturb it.
    pub fn perturb(&mut self, rng: &mut dyn RngCore) {
        let mut log = HbUndoLog::default();
        self.perturb_logged(rng, &mut log);
    }

    /// [`HbTree::perturb`] with an undo record for [`HbTree::undo`]. The RNG
    /// consumption is identical to `perturb`, so logged and unlogged runs with
    /// the same seed follow the same trajectory. Zero allocation: the
    /// candidate list and token-rotatability table are precomputed at
    /// construction (node kinds never change during annealing).
    pub fn perturb_logged(&mut self, rng: &mut dyn RngCore, log: &mut HbUndoLog) {
        log.node = None;
        log.tree.reset();
        if self.perturb_candidates.is_empty() {
            return;
        }
        let pick = self.perturb_candidates[rng.gen_range(0..self.perturb_candidates.len())];
        log.node = Some(pick);
        let token_rotatable = &self.token_rotatable;
        match &mut self.kinds[pick] {
            NodeKind::Tree(tree) => {
                tree.perturb_logged(
                    rng,
                    |token| token_rotatable.get(token.index()).copied().unwrap_or(false),
                    &mut log.tree,
                );
            }
            NodeKind::SymmetryIsland(asf) => {
                asf.half_tree_mut().perturb_logged(rng, |_| false, &mut log.tree);
            }
            _ => {}
        }
    }

    /// Replays the inverse of the perturbation recorded in `log`, restoring
    /// the tree exactly. Consumes the log: a second call is a no-op.
    pub fn undo(&mut self, log: &mut HbUndoLog) {
        let Some(node) = log.node.take() else { return };
        match &mut self.kinds[node] {
            NodeKind::Tree(tree) => tree.undo(&mut log.tree),
            NodeKind::SymmetryIsland(asf) => asf.half_tree_mut().undo(&mut log.tree),
            _ => {}
        }
    }

    /// Packs the hierarchy bottom-up into a placement.
    ///
    /// Convenience wrapper over [`HbTree::pack_into`] that allocates fresh
    /// scratch and a fresh placement; hot loops should hold both and call
    /// `pack_into` instead.
    #[must_use]
    pub fn pack(&self) -> Placement {
        let mut scratch = HbPackScratch::new();
        let mut placement = Placement::with_capacity(self.module_count);
        self.pack_into(&mut scratch, &mut placement);
        placement
    }

    /// Packs the hierarchy bottom-up into a reusable placement using reusable
    /// scratch buffers — the allocation-free form of [`HbTree::pack`]
    /// (identical output).
    ///
    /// # Panics
    ///
    /// Panics if `placement` has fewer slots than this tree's module count.
    pub fn pack_into(&self, scratch: &mut HbPackScratch, placement: &mut Placement) {
        scratch.ensure(self.kinds.len());
        self.pack_node_into(self.root, scratch);
        placement.clear();
        for &(module, rect, rotated) in &scratch.node_rects[self.root] {
            let orientation = if self.mirrored[module.index()] {
                Orientation::MY
            } else if rotated {
                Orientation::R90
            } else {
                Orientation::R0
            };
            placement.place(module, rect, orientation, 0);
        }
    }

    fn pack_node_into(&self, node: usize, scratch: &mut HbPackScratch) {
        match &self.kinds[node] {
            NodeKind::Leaf(module) => {
                if scratch.static_done[node] {
                    return;
                }
                let d = self.module_dims[module.index()];
                scratch.node_dims[node] = d;
                let out = &mut scratch.node_rects[node];
                out.clear();
                out.push((*module, Rect::from_dims(Point::ORIGIN, d), false));
                scratch.static_done[node] = true;
            }
            NodeKind::CommonCentroid(group) => {
                if scratch.static_done[node] {
                    return;
                }
                let pattern = generate_pattern(group, &self.module_dims);
                scratch.node_dims[node] = pattern.dims();
                let out = &mut scratch.node_rects[node];
                out.clear();
                out.extend(pattern.rects().iter().map(|&(m, r)| (m, r, false)));
                scratch.static_done[node] = true;
            }
            NodeKind::SymmetryIsland(asf) => {
                let HbPackScratch { node_rects, node_dims, pack, packed, island, .. } = scratch;
                asf.pack_into(&self.module_dims, pack, packed, island);
                node_dims[node] = island.dims();
                let out = &mut node_rects[node];
                out.clear();
                out.extend(island.rects().iter().map(|&(m, r)| (m, r, false)));
            }
            NodeKind::Tree(tree) => {
                // pack children first
                for &c in &self.children[node] {
                    self.pack_node_into(c, scratch);
                }
                let HbPackScratch { node_rects, node_dims, token_dims, pack, packed, .. } = scratch;
                for &c in &self.children[node] {
                    token_dims[c] = node_dims[c];
                }
                pack_btree_into(pack, tree, token_dims, packed);
                // `node_rects[node]` is taken out so the child buffers can be
                // read while the parent buffer is filled (no re-allocation:
                // the taken Vec keeps its capacity and is put back)
                let mut out = std::mem::take(&mut node_rects[node]);
                out.clear();
                for (i, (token, rect)) in packed.rects().iter().enumerate() {
                    let child = token.index();
                    if let NodeKind::Leaf(module) = &self.kinds[child] {
                        // leaf tokens may be rotated: the packed rect already
                        // has the transposed footprint
                        out.push((*module, *rect, packed.rotated()[i]));
                    } else {
                        for &(module, local, rot) in &node_rects[child] {
                            out.push((module, local.translated(rect.origin()), rot));
                        }
                    }
                }
                node_rects[node] = out;
                node_dims[node] = packed.dims();
            }
        }
    }
}

fn node_id(index: usize) -> HierarchyNodeId {
    HierarchyNodeId::from_index(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_anneal::rng::SeededRng;
    use apls_circuit::benchmarks::{self, miller_opamp_fig6};

    #[test]
    fn miller_fig6_packs_legally_with_exact_constraints() {
        let circuit = miller_opamp_fig6();
        let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let placement = hb.pack();
        assert!(placement.is_complete());
        let metrics = placement.metrics(&circuit.netlist);
        assert_eq!(metrics.overlap_area, 0);
        assert_eq!(placement.symmetry_error(&circuit.constraints), 0);
        for g in circuit.constraints.proximity_groups() {
            assert!(g.is_connected(&placement), "proximity group {} split", g.name());
        }
    }

    #[test]
    fn perturbations_keep_placements_legal() {
        let circuit = miller_opamp_fig6();
        let mut hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let mut rng = SeededRng::new(41);
        for step in 0..300 {
            hb.perturb(&mut rng);
            let placement = hb.pack();
            assert!(placement.is_complete(), "incomplete at step {step}");
            assert_eq!(
                placement.metrics(&circuit.netlist).overlap_area,
                0,
                "overlap at step {step}"
            );
            assert_eq!(
                placement.symmetry_error(&circuit.constraints),
                0,
                "asymmetric at step {step}"
            );
        }
    }

    #[test]
    fn benchmark_circuits_pack_completely() {
        for circuit in [benchmarks::comparator_v2(), benchmarks::miller_v2()] {
            let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
            let placement = hb.pack();
            assert!(placement.is_complete(), "{}", circuit.name);
            assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0, "{}", circuit.name);
            assert_eq!(placement.symmetry_error(&circuit.constraints), 0, "{}", circuit.name);
        }
    }

    #[test]
    fn area_is_at_least_total_module_area() {
        let circuit = benchmarks::miller_v2();
        let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let metrics = hb.pack().metrics(&circuit.netlist);
        assert!(metrics.bounding_area >= circuit.netlist.total_module_area());
    }
}
