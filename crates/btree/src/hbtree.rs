//! Hierarchical B*-trees (HB*-trees).
//!
//! The HB*-tree of reference [17] models each sub-circuit of the layout design
//! hierarchy with its own floorplan representation and links them through
//! hierarchy nodes: perturbations pick one sub-circuit's tree, and packing
//! proceeds bottom-up, abstracting every packed sub-circuit as a block in its
//! parent.
//!
//! [`HbTree`] follows that structure:
//!
//! * hierarchy nodes tagged with a **symmetry** constraint whose leaves form a
//!   symmetry group are placed as ASF symmetry islands ([`crate::asf`]);
//! * nodes tagged **common-centroid** use the interdigitated pattern generator
//!   ([`crate::common_centroid`]);
//! * all other internal nodes own an ordinary [`BStarTree`] over their
//!   children (modules or sub-circuit blocks).
//!
//! Simplification vs. [17] (documented in DESIGN.md): a packed sub-circuit is
//! abstracted by its bounding rectangle during parent packing, i.e. the
//! rectilinear top contour of a cluster is not exploited. Experiment E10
//! quantifies the impact by comparing against flat (non-hierarchical) B*-tree
//! placement.

use crate::asf::AsfBTree;
use crate::common_centroid::generate_pattern;
use crate::{pack_btree, BStarTree};
use apls_circuit::{
    ConstraintKind, ConstraintSet, HierarchyNode, HierarchyNodeId, HierarchyTree, ModuleId,
    Netlist, Placement,
};
use apls_geometry::{Dims, Orientation, Point, Rect};
use rand::{Rng, RngCore};

/// How one hierarchy node is placed.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeKind {
    /// A single module.
    Leaf(ModuleId),
    /// An internal node packed with its own B*-tree over child blocks.
    Tree(BStarTree),
    /// A symmetry island over the node's symmetry group.
    SymmetryIsland(AsfBTree),
    /// A common-centroid pattern over the node's group.
    CommonCentroid(apls_circuit::CommonCentroidGroup),
}

/// The hierarchical B*-tree state explored by the annealing placer.
///
/// # Example
///
/// ```
/// use apls_circuit::benchmarks::miller_opamp_fig6;
/// use apls_btree::HbTree;
///
/// let circuit = miller_opamp_fig6();
/// let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
/// let placement = hb.pack();
/// assert!(placement.is_complete());
/// assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HbTree {
    /// One entry per hierarchy node, indexed by `HierarchyNodeId::index`.
    kinds: Vec<NodeKind>,
    /// Children of each hierarchy node (hierarchy node indices).
    children: Vec<Vec<usize>>,
    root: usize,
    /// Default module dimensions, indexed by module id.
    module_dims: Vec<Dims>,
    module_count: usize,
    /// Whether a module may be rotated by the perturbation operators.
    rotatable: Vec<bool>,
    /// Right-pair members per module index (for mirrored orientations).
    mirrored: Vec<bool>,
}

impl HbTree {
    /// Builds the initial HB*-tree for a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy tree has no root or does not validate against
    /// the netlist.
    #[must_use]
    pub fn new(netlist: &Netlist, hierarchy: &HierarchyTree, constraints: &ConstraintSet) -> Self {
        hierarchy.validate(netlist).expect("hierarchy tree must cover the netlist");
        let root = hierarchy.root().expect("hierarchy has a root").index();
        let module_dims = netlist.default_dims();
        let module_count = netlist.module_count();

        let mut rotatable = vec![false; module_count];
        for (id, module) in netlist.modules() {
            let constrained = !constraints.kinds_for(id).is_empty();
            rotatable[id.index()] = module.rotation_allowed() && !constrained;
        }
        let mut mirrored = vec![false; module_count];
        for g in constraints.symmetry_groups() {
            for &(_, r) in g.pairs() {
                mirrored[r.index()] = true;
            }
        }

        let mut kinds: Vec<NodeKind> = Vec::with_capacity(hierarchy.node_count());
        let mut children: Vec<Vec<usize>> = Vec::with_capacity(hierarchy.node_count());
        for i in 0..hierarchy.node_count() {
            let id = node_id(i);
            children.push(hierarchy.children(id).iter().map(|c| c.index()).collect());
            kinds.push(Self::classify(netlist, hierarchy, constraints, id));
        }

        HbTree { kinds, children, root, module_dims, module_count, rotatable, mirrored }
    }

    fn classify(
        _netlist: &Netlist,
        hierarchy: &HierarchyTree,
        constraints: &ConstraintSet,
        id: HierarchyNodeId,
    ) -> NodeKind {
        match hierarchy.node(id) {
            HierarchyNode::Leaf { module } => NodeKind::Leaf(*module),
            HierarchyNode::Internal { constraint, .. } => {
                let leaves = hierarchy.leaves_under(id);
                let mut sorted_leaves = leaves.clone();
                sorted_leaves.sort();
                if *constraint == Some(ConstraintKind::Symmetry) {
                    if let Some(group) = constraints.symmetry_groups().iter().find(|g| {
                        let mut members = g.members();
                        members.sort();
                        members == sorted_leaves
                    }) {
                        return NodeKind::SymmetryIsland(AsfBTree::new(group.clone()));
                    }
                }
                if *constraint == Some(ConstraintKind::CommonCentroid) {
                    if let Some(group) = constraints.common_centroid_groups().iter().find(|g| {
                        let mut members = g.members();
                        members.sort();
                        members == sorted_leaves
                    }) {
                        return NodeKind::CommonCentroid(group.clone());
                    }
                }
                // ordinary sub-circuit: B*-tree over the child tokens
                let tokens: Vec<ModuleId> = hierarchy
                    .children(id)
                    .iter()
                    .map(|c| ModuleId::from_index(c.index()))
                    .collect();
                NodeKind::Tree(BStarTree::left_chain(&tokens))
            }
        }
    }

    /// Number of placeable modules covered by the tree.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.module_count
    }

    /// Applies one random perturbation: pick a sub-circuit that owns a tree
    /// (ordinary node or symmetry-island half-tree) and perturb it.
    pub fn perturb(&mut self, rng: &mut dyn RngCore) {
        let candidates: Vec<usize> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, NodeKind::Tree(_) | NodeKind::SymmetryIsland(_)))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return;
        }
        let pick = candidates[rng.gen_range(0..candidates.len())];
        let rotatable = self.rotatable.clone();
        // A token is rotatable only when it is a leaf whose module allows it:
        // rotating a sub-circuit block would transpose its footprint without
        // transposing its contents.
        let kinds_snapshot: Vec<Option<ModuleId>> = self.kinds_leaf_modules();
        match &mut self.kinds[pick] {
            NodeKind::Tree(tree) => {
                tree.perturb(rng, |token| {
                    kinds_snapshot
                        .get(token.index())
                        .copied()
                        .flatten()
                        .map(|m| rotatable[m.index()])
                        .unwrap_or(false)
                });
            }
            NodeKind::SymmetryIsland(asf) => {
                asf.half_tree_mut().perturb(rng, |_| false);
            }
            _ => {}
        }
    }

    /// For every hierarchy node index, the module it represents when it is a
    /// leaf.
    fn kinds_leaf_modules(&self) -> Vec<Option<ModuleId>> {
        self.kinds
            .iter()
            .map(|k| match k {
                NodeKind::Leaf(m) => Some(*m),
                _ => None,
            })
            .collect()
    }

    /// Packs the hierarchy bottom-up into a placement.
    #[must_use]
    pub fn pack(&self) -> Placement {
        let mut placement = Placement::with_capacity(self.module_count);
        let sub = self.pack_node(self.root);
        for (module, rect, rotated) in &sub.rects {
            let orientation = if self.mirrored[module.index()] {
                Orientation::MY
            } else if *rotated {
                Orientation::R90
            } else {
                Orientation::R0
            };
            placement.place(*module, *rect, orientation, 0);
        }
        placement
    }

    fn pack_node(&self, node: usize) -> SubPlacement {
        match &self.kinds[node] {
            NodeKind::Leaf(module) => {
                let d = self.module_dims[module.index()];
                SubPlacement {
                    dims: d,
                    rects: vec![(*module, Rect::from_dims(Point::ORIGIN, d), false)],
                }
            }
            NodeKind::SymmetryIsland(asf) => {
                let island = asf.pack(&self.module_dims);
                SubPlacement {
                    dims: island.dims(),
                    rects: island.rects().iter().map(|&(m, r)| (m, r, false)).collect(),
                }
            }
            NodeKind::CommonCentroid(group) => {
                let pattern = generate_pattern(group, &self.module_dims);
                SubPlacement {
                    dims: pattern.dims(),
                    rects: pattern.rects().iter().map(|&(m, r)| (m, r, false)).collect(),
                }
            }
            NodeKind::Tree(tree) => {
                // pack children first
                let child_placements: Vec<(usize, SubPlacement)> =
                    self.children[node].iter().map(|&c| (c, self.pack_node(c))).collect();
                // token dims table indexed by hierarchy node index
                let max_token = self.kinds.len();
                let mut token_dims = vec![Dims::ZERO; max_token];
                for (c, sub) in &child_placements {
                    token_dims[*c] = sub.dims;
                }
                let packed = pack_btree(tree, &token_dims);
                let mut rects = Vec::new();
                for (token, rect) in packed.rects() {
                    let child = token.index();
                    let sub = &child_placements
                        .iter()
                        .find(|(c, _)| *c == child)
                        .expect("token corresponds to a child")
                        .1;
                    if let NodeKind::Leaf(module) = &self.kinds[child] {
                        // leaf tokens may be rotated: the packed rect already
                        // has the transposed footprint
                        rects.push((*module, *rect, tree.is_rotated(*token)));
                    } else {
                        for (module, local, rot) in &sub.rects {
                            rects.push((*module, local.translated(rect.origin()), *rot));
                        }
                    }
                }
                SubPlacement { dims: packed.dims(), rects }
            }
        }
    }
}

/// A packed sub-circuit: block footprint plus module rectangles relative to
/// the block origin. The `bool` marks modules that were rotated.
struct SubPlacement {
    dims: Dims,
    rects: Vec<(ModuleId, Rect, bool)>,
}

fn node_id(index: usize) -> HierarchyNodeId {
    HierarchyNodeId::from_index(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apls_anneal::rng::SeededRng;
    use apls_circuit::benchmarks::{self, miller_opamp_fig6};

    #[test]
    fn miller_fig6_packs_legally_with_exact_constraints() {
        let circuit = miller_opamp_fig6();
        let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let placement = hb.pack();
        assert!(placement.is_complete());
        let metrics = placement.metrics(&circuit.netlist);
        assert_eq!(metrics.overlap_area, 0);
        assert_eq!(placement.symmetry_error(&circuit.constraints), 0);
        for g in circuit.constraints.proximity_groups() {
            assert!(g.is_connected(&placement), "proximity group {} split", g.name());
        }
    }

    #[test]
    fn perturbations_keep_placements_legal() {
        let circuit = miller_opamp_fig6();
        let mut hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let mut rng = SeededRng::new(41);
        for step in 0..300 {
            hb.perturb(&mut rng);
            let placement = hb.pack();
            assert!(placement.is_complete(), "incomplete at step {step}");
            assert_eq!(
                placement.metrics(&circuit.netlist).overlap_area,
                0,
                "overlap at step {step}"
            );
            assert_eq!(
                placement.symmetry_error(&circuit.constraints),
                0,
                "asymmetric at step {step}"
            );
        }
    }

    #[test]
    fn benchmark_circuits_pack_completely() {
        for circuit in [benchmarks::comparator_v2(), benchmarks::miller_v2()] {
            let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
            let placement = hb.pack();
            assert!(placement.is_complete(), "{}", circuit.name);
            assert_eq!(placement.metrics(&circuit.netlist).overlap_area, 0, "{}", circuit.name);
            assert_eq!(placement.symmetry_error(&circuit.constraints), 0, "{}", circuit.name);
        }
    }

    #[test]
    fn area_is_at_least_total_module_area() {
        let circuit = benchmarks::miller_v2();
        let hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let metrics = hb.pack().metrics(&circuit.netlist);
        assert!(metrics.bounding_area >= circuit.netlist.total_module_area());
    }
}
