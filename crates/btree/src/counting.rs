//! Size of the B*-tree solution space.
//!
//! Section IV of the paper motivates hierarchically bounded enumeration with
//! the observation that "when B*-trees are used to encode the placement, the
//! number of possible placements for 8 modules is already 57,657,600". That
//! value is `8! · Catalan(8) = 40,320 · 1,430`: the number of (shape, labeling)
//! combinations of a binary tree over 8 labelled modules. This module provides
//! the closed-form count plus a brute-force enumerator for small `n` used to
//! cross-check it (experiment E4).

use crate::{pack_btree, BStarTree};
use apls_circuit::ModuleId;
use apls_geometry::Dims;
use std::collections::BTreeSet;

/// The n-th Catalan number as `u128`, or `None` on overflow.
#[must_use]
pub fn catalan(n: u64) -> Option<u128> {
    // C_n = binom(2n, n) / (n + 1), computed incrementally:
    // C_0 = 1, C_{k+1} = C_k * 2(2k+1) / (k+2)
    let mut c: u128 = 1;
    for k in 0..n {
        c = c.checked_mul(2 * (2 * u128::from(k) + 1))?;
        c /= u128::from(k) + 2;
    }
    Some(c)
}

/// Factorial as `u128`, or `None` on overflow.
#[must_use]
pub fn factorial(n: u64) -> Option<u128> {
    let mut acc: u128 = 1;
    for v in 1..=u128::from(n) {
        acc = acc.checked_mul(v)?;
    }
    Some(acc)
}

/// Number of distinct B*-trees over `n` labelled modules (ignoring rotations):
/// `n! · Catalan(n)`.
///
/// # Example
///
/// ```
/// use apls_btree::counting::btree_count;
///
/// // the value quoted in Section IV of the paper for 8 modules
/// assert_eq!(btree_count(8), Some(57_657_600));
/// ```
#[must_use]
pub fn btree_count(n: u64) -> Option<u128> {
    factorial(n)?.checked_mul(catalan(n)?)
}

/// Enumerates every B*-tree over the given modules and returns the number of
/// *distinct packed placements* (as sets of module rectangles) they produce
/// for the given dimensions.
///
/// Different trees can pack to the same placement, so this is a lower bound on
/// [`btree_count`]; for modules of distinct prime-ish dimensions the counts
/// coincide for small `n`. Complexity is `n! · Catalan(n)` packings — keep
/// `n ≤ 6`.
#[must_use]
pub fn enumerate_distinct_placements(modules: &[ModuleId], dims: &[Dims]) -> u64 {
    /// One placed rectangle: `(module, x_min, y_min, x_max, y_max)`.
    type PlacementKey = Vec<(ModuleId, i64, i64, i64, i64)>;
    let mut placements: BTreeSet<PlacementKey> = BTreeSet::new();
    for tree in enumerate_trees(modules) {
        let packed = pack_btree(&tree, dims);
        let mut key: PlacementKey =
            packed.rects().iter().map(|(m, r)| (*m, r.x_min, r.y_min, r.x_max, r.y_max)).collect();
        key.sort();
        placements.insert(key);
    }
    placements.len() as u64
}

/// Enumerates every B*-tree (shape × labelling) over the given modules.
///
/// Complexity `n! · Catalan(n)`; keep `n ≤ 7`.
#[must_use]
pub fn enumerate_trees(modules: &[ModuleId]) -> Vec<BStarTree> {
    let mut out = Vec::new();
    for perm in permutations(modules) {
        for shape in tree_shapes(perm.len()) {
            out.push(build_tree(&perm, &shape));
        }
    }
    out
}

/// Counts the trees produced by [`enumerate_trees`] without materialising the
/// packings (cross-check of the closed form).
#[must_use]
pub fn enumerate_tree_count(n: usize) -> u64 {
    let modules: Vec<ModuleId> = (0..n).map(ModuleId::from_index).collect();
    enumerate_trees(&modules).len() as u64
}

/// A binary tree shape over `n` nodes, encoded as, for each node index in
/// pre-order, how many nodes go into its left subtree.
type Shape = Vec<usize>;

fn tree_shapes(n: usize) -> Vec<Shape> {
    // Recursively: a shape over n nodes is (left subtree size k, shape of left
    // subtree, shape of right subtree).
    fn rec(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for k in 0..n {
            for left in rec(k) {
                for right in rec(n - 1 - k) {
                    let mut shape = Vec::with_capacity(n);
                    shape.push(k);
                    shape.extend_from_slice(&left);
                    shape.extend_from_slice(&right);
                    out.push(shape);
                }
            }
        }
        out
    }
    rec(n)
}

fn build_tree(preorder_modules: &[ModuleId], shape: &Shape) -> BStarTree {
    // Rebuild a BStarTree by attaching modules according to the shape. We
    // construct via move_node operations on a left chain, which is simple but
    // O(n²); fine for the small n used in enumeration.
    fn attach(
        tree: &mut BStarTree,
        modules: &[ModuleId],
        shape: &[usize],
        parent: Option<(ModuleId, bool)>,
    ) {
        if modules.is_empty() {
            return;
        }
        let k = shape[0];
        let root = modules[0];
        if let Some((parent_module, as_left)) = parent {
            tree.move_node(root, parent_module, as_left);
        }
        let (left_mods, right_mods) = modules[1..].split_at(k);
        let (left_shape, right_shape) = shape[1..].split_at(k);
        attach(tree, left_mods, left_shape, Some((root, true)));
        attach(tree, right_mods, right_shape, Some((root, false)));
    }

    let mut tree = BStarTree::left_chain(preorder_modules);
    // Rebuild from scratch: detach everything into a left chain first (already
    // is one), then re-attach per shape. The first module is already the root.
    attach(&mut tree, preorder_modules, shape, None);
    debug_assert!(tree.validate().is_ok());
    tree
}

fn permutations(items: &[ModuleId]) -> Vec<Vec<ModuleId>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<ModuleId> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut perm = Vec::with_capacity(items.len());
            perm.push(head);
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalan_numbers() {
        let expected = [1u128, 1, 2, 5, 14, 42, 132, 429, 1430];
        for (n, &c) in expected.iter().enumerate() {
            assert_eq!(catalan(n as u64), Some(c), "C_{n}");
        }
    }

    #[test]
    fn paper_count_for_8_modules() {
        assert_eq!(btree_count(8), Some(57_657_600));
    }

    #[test]
    fn closed_form_matches_enumeration_for_small_n() {
        for n in 0..=5usize {
            assert_eq!(
                u128::from(enumerate_tree_count(n)),
                btree_count(n as u64).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn tree_shape_count_is_catalan() {
        for n in 0..=7usize {
            assert_eq!(u128::from(tree_shapes(n).len() as u64), catalan(n as u64).unwrap());
        }
    }

    #[test]
    fn enumerated_trees_are_valid_and_cover_all_modules() {
        let modules: Vec<ModuleId> = (0..4).map(ModuleId::from_index).collect();
        for tree in enumerate_trees(&modules) {
            assert!(tree.validate().is_ok());
            let mut pre = tree.preorder();
            pre.sort();
            assert_eq!(pre, modules);
        }
    }

    #[test]
    fn distinct_placement_count_is_bounded_by_tree_count() {
        let modules: Vec<ModuleId> = (0..4).map(ModuleId::from_index).collect();
        let dims = vec![Dims::new(7, 3), Dims::new(11, 5), Dims::new(13, 2), Dims::new(3, 17)];
        let distinct = enumerate_distinct_placements(&modules, &dims);
        assert!(distinct > 0);
        assert!(u128::from(distinct) <= btree_count(4).unwrap());
    }
}
