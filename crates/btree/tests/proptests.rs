//! Property-based tests for the B*-tree engine.

use apls_anneal::rng::SeededRng;
use apls_btree::asf::AsfBTree;
use apls_btree::{pack_btree, BStarTree, HbTree, HbUndoLog, TreeUndoLog};
use apls_circuit::benchmarks::{generate, GeneratorConfig};
use apls_circuit::{Module, ModuleId, Netlist, Placement, SymmetryGroup};
use apls_geometry::{total_overlap_area, Dims, Orientation, Rect};
use proptest::prelude::*;

fn ids(n: usize) -> Vec<ModuleId> {
    (0..n).map(ModuleId::from_index).collect()
}

proptest! {
    /// Random perturbation sequences keep the tree valid, lossless, and its
    /// packing legal.
    #[test]
    fn perturbed_trees_always_pack_legally(
        n in 2usize..20,
        seed in 0u64..1000,
        steps in 1usize..60,
        sizes in proptest::collection::vec((4i64..60, 4i64..60), 20),
    ) {
        let modules = ids(n);
        let dims: Vec<Dims> = sizes.iter().take(n).map(|&(w, h)| Dims::new(w, h)).collect();
        let mut tree = BStarTree::balanced(&modules);
        let mut rng = SeededRng::new(seed);
        for _ in 0..steps {
            tree.perturb(&mut rng, |_| true);
        }
        prop_assert!(tree.validate().is_ok());
        let mut pre = tree.preorder();
        pre.sort();
        prop_assert_eq!(pre, modules);
        let packed = pack_btree(&tree, &dims);
        let rects: Vec<Rect> = packed.rects().iter().map(|(_, r)| *r).collect();
        prop_assert_eq!(total_overlap_area(&rects), 0);
        let total: i128 = dims.iter().map(|d| d.area()).sum();
        prop_assert!(packed.area() >= total);
    }

    /// Any ASF half-tree yields an exactly symmetric, legal island (the
    /// "automatically symmetric-feasible" property).
    #[test]
    fn asf_islands_are_always_symmetric(
        pair_sizes in proptest::collection::vec((4i64..50, 4i64..50), 1..5),
        self_sizes in proptest::collection::vec((2i64..25, 4i64..50), 0..3),
        seed in 0u64..500,
        steps in 0usize..40,
    ) {
        let mut netlist = Netlist::new("asf-prop");
        let mut group = SymmetryGroup::new("g");
        for (i, &(w, h)) in pair_sizes.iter().enumerate() {
            let d = Dims::new(w, h);
            let l = netlist.add_module(Module::new(format!("L{i}"), d));
            let r = netlist.add_module(Module::new(format!("R{i}"), d));
            group = group.with_pair(l, r);
        }
        for (i, &(w, h)) in self_sizes.iter().enumerate() {
            // even widths so an exact integer axis exists
            let m = netlist.add_module(Module::new(format!("S{i}"), Dims::new(2 * w, h)));
            group = group.with_self_symmetric(m);
        }
        let mut asf = AsfBTree::new(group.clone());
        let mut rng = SeededRng::new(seed);
        for _ in 0..steps {
            asf.half_tree_mut().perturb(&mut rng, |_| true);
        }
        let island = asf.pack(&netlist.default_dims());
        let mut placement = Placement::new(&netlist);
        for &(m, r) in island.rects() {
            placement.place(m, r, Orientation::R0, 0);
        }
        prop_assert_eq!(group.axis_error(&placement), 0);
        let rects: Vec<Rect> = island.rects().iter().map(|(_, r)| *r).collect();
        prop_assert_eq!(total_overlap_area(&rects), 0);
        for (_, r) in island.rects() {
            prop_assert!(r.x_min >= 0 && r.y_min >= 0);
            prop_assert!(r.x_max <= island.dims().w && r.y_max <= island.dims().h);
        }
    }

    /// Undo-log rollback restores a B*-tree to its exact pre-perturbation
    /// state from any reachable shape, under any rotatability predicate.
    #[test]
    fn undo_log_restores_trees_exactly(
        n in 2usize..24,
        seed in 0u64..1000,
        drift in 0usize..40,
        checks in 1usize..40,
        rotatable_mask in 0u32..u32::MAX,
    ) {
        let modules = ids(n);
        let mut tree = BStarTree::balanced(&modules);
        let mut rng = SeededRng::new(seed);
        for _ in 0..drift {
            tree.perturb(&mut rng, |_| true);
        }
        let mut log = TreeUndoLog::default();
        for _ in 0..checks {
            let before = tree.clone();
            tree.perturb_logged(
                &mut rng,
                |m| rotatable_mask & (1 << (m.index() % 32)) != 0,
                &mut log,
            );
            tree.undo(&mut log);
            prop_assert_eq!(&tree, &before);
            prop_assert!(log.is_empty());
            prop_assert!(tree.validate().is_ok());
            // drift one applied step so every check starts from a new shape
            tree.perturb(&mut rng, |_| true);
        }
    }

    /// Undo-log rollback restores a whole HB*-tree (hierarchy, symmetry
    /// islands included) exactly, on randomly generated circuits.
    #[test]
    fn undo_log_restores_hbtrees_exactly(
        module_count in 6usize..30,
        seed in 0u64..300,
        checks in 1usize..25,
    ) {
        let circuit = generate(
            "prop-undo",
            GeneratorConfig { module_count, seed, ..GeneratorConfig::default() },
        );
        let mut hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let mut rng = SeededRng::new(seed ^ 0xBEEF);
        let mut log = HbUndoLog::default();
        for _ in 0..checks {
            let before = hb.clone();
            hb.perturb_logged(&mut rng, &mut log);
            hb.undo(&mut log);
            prop_assert_eq!(&hb, &before);
            hb.perturb(&mut rng);
        }
    }

    /// Hierarchical packing of random generated circuits is always complete,
    /// legal and exactly symmetric, even under perturbation.
    #[test]
    fn hbtree_packing_is_legal_on_random_circuits(
        module_count in 6usize..30,
        seed in 0u64..300,
        steps in 0usize..25,
    ) {
        let circuit = generate(
            "prop",
            GeneratorConfig { module_count, seed, ..GeneratorConfig::default() },
        );
        let mut hb = HbTree::new(&circuit.netlist, &circuit.hierarchy, &circuit.constraints);
        let mut rng = SeededRng::new(seed ^ 0xDEAD);
        for _ in 0..steps {
            hb.perturb(&mut rng);
        }
        let placement = hb.pack();
        prop_assert!(placement.is_complete());
        let metrics = placement.metrics(&circuit.netlist);
        prop_assert_eq!(metrics.overlap_area, 0);
        prop_assert_eq!(placement.symmetry_error(&circuit.constraints), 0);
        prop_assert!(metrics.bounding_area >= circuit.netlist.total_module_area());
    }
}
