//! Offline shim for the [`clap`](https://crates.io/crates/clap) builder API.
//!
//! Implements the subset the `apls` CLI uses: [`Command`] with named
//! [`Arg`]s (long and short forms, help text, value names, defaults,
//! [`ArgAction::SetTrue`] flags), `--option value` / `--option=value` /
//! `-o value` parsing, an auto-generated `--help`, and [`ArgMatches`] with
//! `get_one` / `get_flag`.
//!
//! Deliberate simplifications relative to upstream:
//!
//! * all values are stored as `String`s; `get_one::<T>` ignores its type
//!   parameter and returns `Option<&String>` (callers parse numbers
//!   themselves);
//! * one level of subcommands is supported ([`Command::subcommand`] /
//!   [`ArgMatches::subcommand`]); there are no positionals or derive macros;
//! * parse errors print a message plus usage and exit with status 2, like
//!   clap's default behaviour.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

/// How an argument consumes input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArgAction {
    /// Takes one value (`--opt VALUE`).
    #[default]
    Set,
    /// Boolean flag; present means `true`.
    SetTrue,
}

/// One named command-line argument.
#[derive(Debug, Clone, Default)]
pub struct Arg {
    id: String,
    long: Option<String>,
    short: Option<char>,
    help: Option<String>,
    value_name: Option<String>,
    default_value: Option<String>,
    action: ArgAction,
}

impl Arg {
    /// Creates an argument with the given id.
    pub fn new(id: impl Into<String>) -> Self {
        Arg { id: id.into(), ..Arg::default() }
    }

    /// Sets the `--long` form.
    #[must_use]
    pub fn long(mut self, long: impl Into<String>) -> Self {
        self.long = Some(long.into());
        self
    }

    /// Sets the `-s` short form.
    #[must_use]
    pub fn short(mut self, short: char) -> Self {
        self.short = Some(short);
        self
    }

    /// Sets the help text.
    #[must_use]
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Sets the placeholder shown in usage (e.g. `FILE`).
    #[must_use]
    pub fn value_name(mut self, name: impl Into<String>) -> Self {
        self.value_name = Some(name.into());
        self
    }

    /// Sets the value used when the argument is absent.
    #[must_use]
    pub fn default_value(mut self, value: impl Into<String>) -> Self {
        self.default_value = Some(value.into());
        self
    }

    /// Sets the action (flag vs. value).
    #[must_use]
    pub fn action(mut self, action: ArgAction) -> Self {
        self.action = action;
        self
    }
}

/// Parse result: values and flags keyed by argument id.
#[derive(Debug, Clone, Default)]
pub struct ArgMatches {
    values: BTreeMap<String, String>,
    flags: BTreeSet<String>,
    subcommand: Option<Box<(String, ArgMatches)>>,
}

impl ArgMatches {
    /// The value of argument `id`, if present or defaulted.
    ///
    /// The type parameter exists for signature compatibility with upstream
    /// clap; the shim always yields `&String`.
    pub fn get_one<T>(&self, id: &str) -> Option<&String> {
        self.values.get(id)
    }

    /// Whether the [`ArgAction::SetTrue`] flag `id` was passed.
    #[must_use]
    pub fn get_flag(&self, id: &str) -> bool {
        self.flags.contains(id)
    }

    /// The matched subcommand (name plus its own matches), if one was given.
    #[must_use]
    pub fn subcommand(&self) -> Option<(&str, &ArgMatches)> {
        self.subcommand.as_deref().map(|(name, matches)| (name.as_str(), matches))
    }
}

/// Error produced by [`Command::try_get_matches_from`].
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    /// `true` for `--help`, which exits with status 0.
    is_help: bool,
}

impl Error {
    /// Prints the error (or help text) and exits the process.
    pub fn exit(&self) -> ! {
        if self.is_help {
            println!("{}", self.message);
            std::process::exit(0);
        }
        eprintln!("{}", self.message);
        std::process::exit(2);
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A command-line interface definition.
#[derive(Debug, Clone, Default)]
pub struct Command {
    name: String,
    about: Option<String>,
    version: Option<String>,
    args: Vec<Arg>,
    subcommands: Vec<Command>,
}

impl Command {
    /// Creates a command with the given binary name.
    pub fn new(name: impl Into<String>) -> Self {
        Command { name: name.into(), ..Command::default() }
    }

    /// Sets the one-line description shown in `--help`.
    #[must_use]
    pub fn about(mut self, about: impl Into<String>) -> Self {
        self.about = Some(about.into());
        self
    }

    /// Sets the version shown by `--version`.
    #[must_use]
    pub fn version(mut self, version: impl Into<String>) -> Self {
        self.version = Some(version.into());
        self
    }

    /// Adds an argument.
    #[must_use]
    pub fn arg(mut self, arg: Arg) -> Self {
        self.args.push(arg);
        self
    }

    /// Adds a subcommand. The first bare (non-`-`) token naming one
    /// dispatches the remaining arguments to it; `<sub> --help` renders the
    /// subcommand's own help.
    #[must_use]
    pub fn subcommand(mut self, command: Command) -> Self {
        self.subcommands.push(command);
        self
    }

    /// Renders the help text.
    #[must_use]
    pub fn render_help(&self) -> String {
        let mut out = String::new();
        if let Some(about) = &self.about {
            out.push_str(about);
            out.push_str("\n\n");
        }
        if self.subcommands.is_empty() {
            out.push_str(&format!("Usage: {} [OPTIONS]\n\nOptions:\n", self.name));
        } else {
            out.push_str(&format!("Usage: {} [COMMAND] [OPTIONS]\n\nCommands:\n", self.name));
            for sub in &self.subcommands {
                out.push_str(&format!(
                    "  {:<32}{}\n",
                    sub.name,
                    sub.about.clone().unwrap_or_default()
                ));
            }
            out.push_str("\nOptions:\n");
        }
        for arg in &self.args {
            let mut left = String::from("  ");
            if let Some(s) = arg.short {
                left.push_str(&format!("-{s}, "));
            } else {
                left.push_str("    ");
            }
            if let Some(l) = &arg.long {
                left.push_str(&format!("--{l}"));
            }
            if arg.action == ArgAction::Set {
                let vn = arg.value_name.clone().unwrap_or_else(|| arg.id.to_uppercase());
                left.push_str(&format!(" <{vn}>"));
            }
            let help = arg.help.clone().unwrap_or_default();
            let default =
                arg.default_value.as_ref().map(|d| format!(" [default: {d}]")).unwrap_or_default();
            out.push_str(&format!("{left:<34}{help}{default}\n"));
        }
        out.push_str("  -h, --help                      Print help\n");
        if self.version.is_some() {
            out.push_str("  -V, --version                   Print version\n");
        }
        out
    }

    fn find(&self, token: &str) -> Option<&Arg> {
        if let Some(rest) = token.strip_prefix("--") {
            self.args.iter().find(|a| a.long.as_deref() == Some(rest))
        } else if let Some(rest) = token.strip_prefix('-') {
            let mut chars = rest.chars();
            let c = chars.next()?;
            if chars.next().is_some() {
                return None;
            }
            self.args.iter().find(|a| a.short == Some(c))
        } else {
            None
        }
    }

    /// Parses the given iterator of arguments (the first item is the binary
    /// name, as in `std::env::args`).
    pub fn try_get_matches_from<I, S>(self, itr: I) -> Result<ArgMatches, Error>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut matches = ArgMatches::default();
        for arg in &self.args {
            if let Some(d) = &arg.default_value {
                matches.values.insert(arg.id.clone(), d.clone());
            }
        }
        let mut tokens = itr.into_iter().map(Into::into).skip(1).peekable();
        let mut first = true;
        while let Some(token) = tokens.next() {
            if first {
                first = false;
                if let Some(sub) = self.subcommands.iter().find(|s| s.name == token) {
                    let rest: Vec<String> = std::iter::once(format!("{} {}", self.name, sub.name))
                        .chain(tokens)
                        .collect();
                    let sub_matches = sub.clone().try_get_matches_from(rest)?;
                    matches.subcommand = Some(Box::new((token, sub_matches)));
                    return Ok(matches);
                }
            }
            if token == "--help" || token == "-h" {
                return Err(Error { message: self.render_help(), is_help: true });
            }
            if self.version.is_some() && (token == "--version" || token == "-V") {
                return Err(Error {
                    message: format!("{} {}", self.name, self.version.clone().unwrap()),
                    is_help: true,
                });
            }
            let (head, inline_value) = match token.split_once('=') {
                Some((h, v)) if h.starts_with('-') => (h.to_string(), Some(v.to_string())),
                _ => (token.clone(), None),
            };
            let Some(arg) = self.find(&head) else {
                return Err(Error {
                    message: format!(
                        "error: unexpected argument '{head}'\n\n{}",
                        self.render_help()
                    ),
                    is_help: false,
                });
            };
            match arg.action {
                ArgAction::SetTrue => {
                    if inline_value.is_some() {
                        return Err(Error {
                            message: format!("error: flag '{head}' takes no value"),
                            is_help: false,
                        });
                    }
                    matches.flags.insert(arg.id.clone());
                }
                ArgAction::Set => {
                    let value = match inline_value {
                        Some(v) => v,
                        None => tokens.next().ok_or_else(|| Error {
                            message: format!("error: a value is required for '{head}'"),
                            is_help: false,
                        })?,
                    };
                    matches.values.insert(arg.id.clone(), value);
                }
            }
        }
        Ok(matches)
    }

    /// Parses `std::env::args`, printing help/errors and exiting on failure.
    pub fn get_matches(self) -> ArgMatches {
        match self.try_get_matches_from(std::env::args()) {
            Ok(m) => m,
            Err(e) => e.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli() -> Command {
        Command::new("demo")
            .about("demo tool")
            .version("1.0")
            .arg(Arg::new("circuit").long("circuit").short('c').default_value("miller"))
            .arg(Arg::new("seed").long("seed").short('s').value_name("N"))
            .arg(Arg::new("fast").long("fast").action(ArgAction::SetTrue))
    }

    #[test]
    fn defaults_and_values_parse() {
        let m = cli().try_get_matches_from(["demo", "--seed", "7", "--fast"]).expect("parses");
        assert_eq!(m.get_one::<String>("circuit").unwrap(), "miller");
        assert_eq!(m.get_one::<String>("seed").unwrap(), "7");
        assert!(m.get_flag("fast"));
    }

    #[test]
    fn short_and_inline_forms_parse() {
        let m = cli().try_get_matches_from(["demo", "-c", "buffer", "--seed=9"]).expect("parses");
        assert_eq!(m.get_one::<String>("circuit").unwrap(), "buffer");
        assert_eq!(m.get_one::<String>("seed").unwrap(), "9");
        assert!(!m.get_flag("fast"));
    }

    #[test]
    fn unknown_argument_errors() {
        let err = cli().try_get_matches_from(["demo", "--nope"]).unwrap_err();
        assert!(err.to_string().contains("unexpected argument"));
    }

    #[test]
    fn help_is_rendered() {
        let err = cli().try_get_matches_from(["demo", "--help"]).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("Usage: demo"));
        assert!(text.contains("--circuit"));
        assert!(text.contains("[default: miller]"));
    }

    fn cli_with_subs() -> Command {
        cli().subcommand(
            Command::new("serve")
                .about("run the daemon")
                .arg(Arg::new("port").long("port").default_value("0")),
        )
    }

    #[test]
    fn subcommands_dispatch_remaining_args() {
        let m = cli_with_subs().try_get_matches_from(["demo", "serve", "--port", "8080"]).unwrap();
        let (name, sub) = m.subcommand().expect("matched subcommand");
        assert_eq!(name, "serve");
        assert_eq!(sub.get_one::<String>("port").unwrap(), "8080");
    }

    #[test]
    fn top_level_args_still_parse_without_a_subcommand() {
        let m = cli_with_subs().try_get_matches_from(["demo", "--seed", "7"]).unwrap();
        assert!(m.subcommand().is_none());
        assert_eq!(m.get_one::<String>("seed").unwrap(), "7");
    }

    #[test]
    fn subcommand_help_and_listing() {
        let err = cli_with_subs().try_get_matches_from(["demo", "--help"]).unwrap_err();
        assert!(err.to_string().contains("Commands:"));
        assert!(err.to_string().contains("serve"));
        let err = cli_with_subs().try_get_matches_from(["demo", "serve", "--help"]).unwrap_err();
        assert!(err.to_string().contains("--port"));
    }

    #[test]
    fn unknown_bare_token_is_still_an_error() {
        let err = cli_with_subs().try_get_matches_from(["demo", "nonsense"]).unwrap_err();
        assert!(err.to_string().contains("unexpected argument"));
    }
}
