//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize` / `Deserialize` on plain data types but
//! never performs serde-based (de)serialization (JSON output is hand-written
//! where needed), so these derives only have to emit marker impls for the
//! vendored `serde` shim traits. No `syn`/`quote` dependency is available
//! offline; the type name and generics are recovered with a small hand-rolled
//! token scan.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(name, generics)` from a `struct`/`enum` definition token stream.
///
/// `generics` is the raw text between `<` and its matching `>` (empty when the
/// type is not generic). Lifetimes and type parameters are re-emitted verbatim
/// on the impl; defaults (`= T`) are stripped.
fn type_name_and_generics(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                };
                // collect generics if the next token opens a parameter list
                let mut generics = String::new();
                if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    tokens.next();
                    let mut depth = 1usize;
                    for tt in tokens.by_ref() {
                        if let TokenTree::Punct(p) = &tt {
                            match p.as_char() {
                                '<' => depth += 1,
                                '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        generics.push_str(&tt.to_string());
                        generics.push(' ');
                    }
                }
                return (name, strip_defaults(&generics));
            }
        }
        // skip attribute bodies like #[derive(...)] — groups are single tokens
        if let TokenTree::Group(g) = &tt {
            if g.delimiter() == Delimiter::Bracket {
                continue;
            }
        }
    }
    panic!("serde_derive shim: no struct or enum found in derive input");
}

/// Removes ` = default` segments from a generic parameter list.
fn strip_defaults(generics: &str) -> String {
    generics
        .split(',')
        .map(|p| p.split('=').next().unwrap_or(p).trim())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Names of the parameters only (for the `for Type<...>` side of the impl):
/// drops bounds like `: Clone`.
fn param_names(generics: &str) -> String {
    generics
        .split(',')
        .map(|p| p.split(':').next().unwrap_or(p).trim())
        .collect::<Vec<_>>()
        .join(", ")
}

fn marker_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let (name, generics) = type_name_and_generics(input);
    let names = param_names(&generics);
    let mut params = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    if !generics.is_empty() {
        params.push(generics.clone());
    }
    let impl_params =
        if params.is_empty() { String::new() } else { format!("<{}>", params.join(", ")) };
    let ty = if names.is_empty() { name } else { format!("{name}<{names}>") };
    format!("impl{impl_params} {trait_path} for {ty} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", None)
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'de>", Some("'de"))
}
