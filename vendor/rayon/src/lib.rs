//! Offline shim for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the subset of rayon's data-parallel API that the workspace uses
//! — `into_par_iter().map(..).collect()` / `for_each`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] for bounding the worker
//! count — on top of `std::thread::scope`. Work is split into contiguous
//! chunks, one per worker, and results are returned in input order, so
//! `collect::<Vec<_>>()` is order-preserving exactly like upstream rayon's
//! indexed parallel iterators.
//!
//! The shim is honest parallelism (real OS threads), just without work
//! stealing; for the coarse-grained tasks in this workspace (whole annealing
//! restarts) chunk scheduling is indistinguishable from rayon's.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use on this thread.
#[must_use]
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|t| t.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with an explicit worker count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads (`0` means "automatic").
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A scoped thread-count policy. Unlike upstream rayon the shim spawns
/// threads per operation rather than keeping a persistent pool; `install`
/// only pins the worker count used by parallel operations inside `f`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed. The previous
    /// override is restored even if `f` panics.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|t| t.replace(self.num_threads)));
        f()
    }

    /// The worker count parallel operations inside [`ThreadPool::install`]
    /// will use.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }
}

/// Order-preserving parallel map over a vector: splits `items` into one
/// contiguous chunk per worker and applies `f` on scoped threads.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let workers = current_num_threads().max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if workers == 1 || n == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A parallel iterator. The shim models the pipeline lazily and executes it
/// when consumed ([`ParallelIterator::collect`] / `for_each`).
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Executes the pipeline, returning items in input order.
    fn run_to_vec(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        self.map(f).run_to_vec();
    }

    /// Collects the results (order-preserving).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Consumes the iterator into the collection.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run_to_vec()
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an owned vector.
pub struct VecParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn run_to_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter { items: self.collect() }
    }
}

/// Lazily mapped parallel iterator.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run_to_vec(self) -> Vec<R> {
        par_map_vec(self.base.run_to_vec(), self.f)
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).collect::<Vec<_>>().into_par_iter().map(|x| x * x).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(super::current_num_threads(), 1);
            let v: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x + 1).collect();
            assert_eq!(v, vec![2, 3, 4]);
        });
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |n: usize| {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            pool.install(|| {
                (0..97u64)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(0x9E3779B97F4A7C15))
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(run(1), run(4));
    }
}
