//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` /
//! `bench_with_input` / `bench_function`, [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! median-of-samples timer and plain-text output instead of statistical
//! analysis and HTML reports. Results are printed as `ns/iter`, one line per
//! benchmark.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered through `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"pack/32"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the workload.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`: calibrates an iteration count to roughly
    /// [`SAMPLE_TARGET`], collects `samples` samples and records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // calibrate: grow the batch until it takes long enough to time
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed = start.elapsed();
            if elapsed >= CALIBRATION_FLOOR || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let target_batches =
            (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64()).clamp(1.0, 64.0) as u64;
        let per_sample = batch * target_batches.max(1);
        let mut samples_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / per_sample as f64
            })
            .collect();
        samples_ns.sort_by(f64::total_cmp);
        self.last_ns_per_iter = samples_ns[samples_ns.len() / 2];
    }
}

/// Per-sample time budget the calibrator aims for.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Shortest measurement the calibrator trusts.
const CALIBRATION_FLOOR: Duration = Duration::from_millis(2);

fn run_one(group: &str, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: samples.clamp(2, 16), last_ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.last_ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{group}/{label}: {human}/iter");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (upstream emits summary reports here; the shim prints
    /// as it goes).
    pub fn finish(self) {}
}

/// The benchmark manager handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored by the shim,
    /// so `cargo bench -- <filter>` style invocations don't error).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 8, _criterion: self }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one("bench", &id.into().label, 8, &mut f);
        self
    }

    /// Upstream API surface; a no-op in the shim.
    pub fn final_summary(&self) {}
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_cheap_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| x.wrapping_mul(7))
        });
        group.finish();
    }
}
