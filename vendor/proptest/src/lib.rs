//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the subset of proptest's API that the workspace's property
//! tests use — [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_shuffle`, range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros — on top of the vendored `rand` shim.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs left
//!   to the assertion message rather than being minimised;
//! * the per-test RNG is seeded from a hash of the test's name, so every run
//!   of the suite explores the same deterministic case set;
//! * the case count defaults to 64 and can be overridden with the
//!   `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A reproducible generator of test values.
    ///
    /// Unlike upstream proptest there is no value tree: `generate` samples a
    /// concrete value directly and failing cases are not shrunk.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates an intermediate value, then samples from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Shuffles the generated collection (Fisher–Yates).
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { base: self }
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, O, F: Fn(B::Value) -> O> Strategy for Map<B, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<B> {
        base: B,
    }

    impl<T, B: Strategy<Value = Vec<T>>> Strategy for Shuffle<B> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.base.generate(rng);
            for i in (1..v.len()).rev() {
                let j = rng.inner().gen_range(0..=i);
                v.swap(i, j);
            }
            v
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// The number of elements [`vec`] may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner().gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The minimal runner behind the [`proptest!`](crate::proptest) macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// The underlying generator.
        pub fn inner(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }

    /// Number of cases each property runs (default 64; override with the
    /// `PROPTEST_CASES` environment variable).
    #[must_use]
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    }

    /// A deterministic RNG derived from the property's name, so each test
    /// explores the same case set on every run.
    #[must_use]
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over
/// [`test_runner::cases`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strat,)*);
                let mut rng = $crate::test_runner::rng_for(stringify!($name));
                for _case in 0..$crate::test_runner::cases() {
                    #[allow(unused_variables, unused_mut)]
                    let mut inner = || {
                        let ($($pat,)*) =
                            $crate::strategy::Strategy::generate(&strategies, &mut rng);
                        $body
                    };
                    inner();
                }
            }
        )*
    };
}

/// Assertion macro mirroring `proptest::prop_assert!` (panics instead of
/// returning a `TestCaseError`; there is no shrinking to resume).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..100, 0i64..100)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, (a, b) in arb_pair()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..100).contains(&a) && (0..100).contains(&b));
        }

        #[test]
        fn shuffle_preserves_elements(v in Just((0usize..20).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0usize..20).collect::<Vec<_>>());
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0i64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn flat_map_chains(pair in (1usize..5).prop_flat_map(|n| crate::collection::vec(0i64..10, n)).prop_map(|v| (v.len(), v))) {
            let (n, v) = pair;
            prop_assert_eq!(n, v.len());
        }
    }

    #[test]
    fn same_name_reproduces_stream() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = 0i64..1000;
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }
}
