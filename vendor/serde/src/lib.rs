//! Offline shim for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace annotates its plain-data types with
//! `#[derive(Serialize, Deserialize)]` for downstream interoperability, but
//! performs no serde-driven (de)serialization itself (the `apls` CLI writes
//! JSON by hand). In this registry-less build environment the traits are
//! therefore markers, and the derive macros emit empty impls. Swapping the
//! vendored shim for real serde requires no source change in the workspace.

#![forbid(unsafe_code)]

// lets the derive-emitted `::serde::...` paths resolve inside this crate's
// own tests
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Plain {
        _x: i64,
    }

    #[derive(super::Serialize, super::Deserialize)]
    enum Kind {
        _A,
        _B(u32),
    }

    #[derive(super::Serialize, super::Deserialize)]
    struct Generic<T: Clone> {
        _t: T,
    }

    fn assert_serialize<T: super::Serialize>() {}
    fn assert_deserialize<T: for<'de> super::Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Kind>();
        assert_serialize::<Generic<i32>>();
    }
}
