//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in an environment without registry access, so the
//! external crates it depends on are vendored as minimal API-compatible
//! subsets under `vendor/`. This shim provides exactly the surface the
//! workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / the extension trait [`Rng`]
//!   (`gen`, `gen_range`, `gen_bool`);
//! * [`rngs::StdRng`], a deterministic, portable, seedable generator.
//!
//! The generator is **not** the upstream `StdRng` (ChaCha12); it is a
//! xoshiro256** seeded through SplitMix64. All reproducibility guarantees in
//! the workspace are relative to this implementation, which is fully
//! deterministic across platforms and thread counts.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by [`rngs::StdRng`]).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Uniformly samples a `u128` in `[0, span)` by rejection, avoiding modulo
/// bias. `span` must be non-zero and fit in a `u64` for all practical callers.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Lemire-style widening multiply with a rejection pass.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // spans wider than u64 never occur in this workspace
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic portable generator (xoshiro256** seeded via SplitMix64).
    ///
    /// Stream-compatible with nothing but itself; chosen for speed, quality
    /// and full determinism across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = dynrng.gen_range(0..100u32);
        assert!(v < 100);
    }
}
