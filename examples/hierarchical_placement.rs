//! Hierarchical HB*-tree placement of a larger benchmark circuit, showing the
//! constraint report and the effect of hierarchy vs a flat B*-tree placer.
//!
//! ```text
//! cargo run --example hierarchical_placement --release
//! ```

use analog_layout_synthesis::btree::{BTreePlacer, HbTreePlacer, HbTreePlacerConfig};
use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::ConstraintReport;

fn main() {
    let circuit = benchmarks::folded_cascode();
    println!(
        "circuit '{}': {} modules, {} basic module sets, hierarchy depth {}",
        circuit.name,
        circuit.netlist.module_count(),
        circuit.hierarchy.basic_module_sets().len(),
        circuit.hierarchy.root().map(|r| circuit.hierarchy.depth(r)).unwrap_or(0),
    );

    let config = HbTreePlacerConfig { seed: 7, ..HbTreePlacerConfig::for_circuit(&circuit) };

    let hierarchical = HbTreePlacer::new(&circuit).run(&config);
    let flat = BTreePlacer::new(&circuit.netlist, &circuit.constraints).run(&config);

    for (label, result) in [("HB*-tree (hierarchical)", &hierarchical), ("flat B*-tree", &flat)] {
        let report = ConstraintReport::evaluate(&circuit, &result.placement);
        println!("\n{label}:");
        println!(
            "  bounding box {} x {} dbu, area usage {:.1} %, HPWL {:.0}",
            result.metrics.width,
            result.metrics.height,
            result.metrics.area_usage * 100.0,
            result.metrics.wirelength
        );
        println!(
            "  symmetry error {} (satisfied: {}), proximity {}/{} connected",
            report.symmetry_error,
            report.symmetry_satisfied,
            report.proximity_connected,
            report.proximity_total
        );
    }
    println!(
        "\nThe hierarchical placer keeps every symmetry group exactly mirrored; the flat\n\
         placer typically wins a little area but violates the analog constraints, which\n\
         is the trade-off Section III of the paper is about."
    );
}
