//! Reproduces Fig. 1 of the paper: the symmetric-feasible sequence-pair
//! `(EBAFCDG, EBCDFAG)` for the symmetry group `γ = {(C, D), (B, G), A, F}`
//! packs into an exactly mirror-symmetric placement, and the counting lemma
//! gives the 99.86 % search-space reduction quoted in Section II.
//!
//! ```text
//! cargo run --example symmetric_placement --release
//! ```

use analog_layout_synthesis::circuit::benchmarks::fig1_circuit;
use analog_layout_synthesis::seqpair::counting::{
    reduction_percentage, sf_upper_bound, total_sequence_pairs,
};
use analog_layout_synthesis::seqpair::place::SymmetricPlacer;
use analog_layout_synthesis::seqpair::symmetry::is_symmetric_feasible;
use analog_layout_synthesis::seqpair::SequencePair;

fn main() {
    let (circuit, ids) = fig1_circuit();
    let names = ["A", "B", "C", "D", "E", "F", "G"];
    let by_name = |n: char| ids[names.iter().position(|&s| s == n.to_string()).unwrap()];

    // the sequence-pair of Fig. 1: (EBAFCDG, EBCDFAG)
    let alpha: Vec<_> = "EBAFCDG".chars().map(by_name).collect();
    let beta: Vec<_> = "EBCDFAG".chars().map(by_name).collect();
    let sp = SequencePair::from_sequences(alpha, beta).expect("valid permutations");
    let group = &circuit.constraints.symmetry_groups()[0];

    println!("sequence-pair: {sp}");
    println!(
        "symmetric-feasible for gamma = {{(C,D),(B,G),A,F}}: {}",
        is_symmetric_feasible(&sp, group)
    );

    let placer = SymmetricPlacer::new(&circuit.netlist, &circuit.constraints);
    let placement = placer.place(&sp);
    println!("\nplacement (dbu):");
    for (name, &id) in names.iter().zip(&ids) {
        let rect = placement.rect_of(id);
        println!("  {name}: {rect}");
    }
    let metrics = placement.metrics(&circuit.netlist);
    println!(
        "\noverlap = {}, symmetry error = {}, bounding box = {}x{}",
        metrics.overlap_area,
        placement.symmetry_error(&circuit.constraints),
        metrics.width,
        metrics.height
    );

    // the counting lemma for this configuration (n = 7, p = s = 2)
    println!("\nsearch-space reduction (Section II lemma):");
    println!("  total sequence-pairs  (7!)^2      = {}", total_sequence_pairs(7) as u64);
    println!("  symmetric-feasible bound (7!)^2/6! = {}", sf_upper_bound(7, &[(2, 2)]) as u64);
    println!("  reduction                          = {:.2} %", reduction_percentage(7, &[(2, 2)]));
}
