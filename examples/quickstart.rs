//! Quickstart: place the Fig. 6 Miller op-amp with all three engines.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use analog_layout_synthesis::circuit::benchmarks::miller_opamp_fig6;
use analog_layout_synthesis::{AnalogPlacer, Engine};

fn main() {
    let circuit = miller_opamp_fig6();
    println!(
        "circuit '{}': {} modules, {} nets, {} symmetry group(s), {} proximity group(s)",
        circuit.name,
        circuit.netlist.module_count(),
        circuit.netlist.net_count(),
        circuit.constraints.symmetry_groups().len(),
        circuit.constraints.proximity_groups().len(),
    );
    println!();

    for engine in [Engine::SequencePair, Engine::HbTree, Engine::Deterministic] {
        let report = AnalogPlacer::new(engine).with_seed(42).place(&circuit);
        println!("{}", report.summary());
        // print the placement of the differential pair to show the mirror
        let p1 = circuit.netlist.module_ids().next().expect("has modules");
        if let Some(placed) = report.placement.get(p1) {
            println!(
                "    {} placed at {} ({})",
                circuit.netlist.module(p1).name(),
                placed.rect,
                placed.orientation
            );
        }
    }
}
