//! Reproduces the Fig. 10 experiment in miniature: size the folded-cascode
//! amplifier once with the classical electrical-only flow and once with the
//! layout-aware flow, then compare post-layout spec compliance, layout
//! compactness and the time spent in extraction.
//!
//! ```text
//! cargo run --example layout_aware_sizing --release
//! ```

use analog_layout_synthesis::layoutaware::model::Specs;
use analog_layout_synthesis::layoutaware::sizing::{SizingConfig, SizingMode, SizingOptimizer};

fn main() {
    let specs = Specs::default();
    println!(
        "specs: gain >= {} dB, GBW >= {} MHz, PM >= {} deg, power <= {} mW\n",
        specs.min_gain_db,
        specs.min_gbw_hz / 1e6,
        specs.min_phase_margin_deg,
        specs.max_power_w * 1e3
    );
    let optimizer = SizingOptimizer::new(specs);

    for mode in [SizingMode::ElectricalOnly, SizingMode::LayoutAware] {
        let result = optimizer.run(&SizingConfig { mode, iterations: 2000, seed: 42 });
        println!("--- {mode:?} ---");
        println!(
            "  layout: {:.1} x {:.1} um  (area {:.0} um^2, aspect ratio {:.1})",
            result.layout.width_um(),
            result.layout.height_um(),
            result.layout.area_um2(),
            result.layout.aspect_ratio()
        );
        println!(
            "  pre-layout : gain {:.1} dB, GBW {:.0} MHz, PM {:.1} deg, power {:.2} mW  -> specs met: {}",
            result.pre_layout.gain_db,
            result.pre_layout.gbw_hz / 1e6,
            result.pre_layout.phase_margin_deg,
            result.pre_layout.power_w * 1e3,
            result.specs_met_pre_layout
        );
        println!(
            "  post-layout: gain {:.1} dB, GBW {:.0} MHz, PM {:.1} deg, power {:.2} mW  -> specs met: {}",
            result.post_layout.gain_db,
            result.post_layout.gbw_hz / 1e6,
            result.post_layout.phase_margin_deg,
            result.post_layout.power_w * 1e3,
            result.specs_met_post_layout
        );
        println!(
            "  extraction: {:.1} % of the {:.0} ms sizing run\n",
            result.extraction_fraction() * 100.0,
            result.total_time.as_secs_f64() * 1e3
        );
    }
}
