//! Regenerates the `comparison` rows of `BENCH_hier.json`: the hierarchical
//! cross-engine pipeline (hier engine) against the pure deterministic
//! enumeration engine on every bundled circuit.
//!
//! ```text
//! cargo run --release --example hier_comparison
//! ```

use analog_layout_synthesis::circuit::benchmarks;
use analog_layout_synthesis::shapefn::hier::{BTreeAnnealSolver, HierOptions, HierPlacer};
use analog_layout_synthesis::shapefn::{DeterministicPlacer, ShapeModel};

fn main() {
    println!("  \"comparison\": [");
    let names = benchmarks::names();
    for (i, name) in names.iter().enumerate() {
        let circuit = benchmarks::by_name(name).expect("bundled name resolves");
        let det = DeterministicPlacer::new(&circuit).run(ShapeModel::Enhanced);
        let hier = HierPlacer::new(&circuit)
            .with_options(HierOptions::default().with_seed(7))
            .with_sub_solver(Box::new(BTreeAnnealSolver))
            .run();
        let det_area = det.dims.area();
        let hier_area = hier.dims.area();
        println!(
            "    {{\"circuit\": \"{name}\", \"modules\": {}, \"deterministic_dims\": \"{}x{}\", \"deterministic_area\": {}, \"deterministic_ms\": {:.3}, \"hier_dims\": \"{}x{}\", \"hier_area\": {}, \"hier_ms\": {:.3}, \"hier_area_usage\": {:.4}, \"annealed_nodes\": {}, \"enumeration_won\": {}, \"area_improvement_pct\": {:.2}}}{}",
            circuit.module_count(),
            det.dims.w,
            det.dims.h,
            det_area,
            det.runtime.as_secs_f64() * 1e3,
            hier.dims.w,
            hier.dims.h,
            hier_area,
            hier.runtime.as_secs_f64() * 1e3,
            hier.area_usage,
            hier.annealed_nodes,
            hier.enumeration_won,
            (det_area - hier_area) as f64 / det_area as f64 * 100.0,
            if i + 1 < names.len() { "," } else { "" },
        );
        assert!(hier_area <= det_area, "{name}: the hier engine must never lose");
    }
    println!("  ]");
}
